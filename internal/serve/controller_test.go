package serve

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"mdrs/internal/obs"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// Regression for the SoloMargin normalization bug: with an
// opportunistic window (BatchWindow < 0, normalized to 0) the
// proportional default 4×BatchWindow collapsed to 0, so deadline-aware
// solo degradation fired only for deadlines that had already expired.
// The opportunistic fallback must be absolute and positive.
func TestSoloMarginDefaultSurvivesOpportunisticWindow(t *testing.T) {
	c := Config{BatchWindow: -1}.withDefaults()
	if c.BatchWindow != 0 {
		t.Fatalf("opportunistic window normalized to %v, want 0", c.BatchWindow)
	}
	if c.SoloMargin != defaultOpportunisticSoloMargin {
		t.Fatalf("SoloMargin = %v, want the opportunistic fallback %v",
			c.SoloMargin, defaultOpportunisticSoloMargin)
	}
	// The proportional default is untouched when a window exists.
	c = Config{BatchWindow: 3 * time.Millisecond}.withDefaults()
	if c.SoloMargin != 12*time.Millisecond {
		t.Fatalf("SoloMargin = %v, want 4×window", c.SoloMargin)
	}
	// And the service exposes the resolved value through its knobs.
	svc := mustService(t, Config{Scheduler: testScheduler(8, 0.5, 0.7), BatchWindow: -1})
	if got := svc.Tuning().SoloMargin; got != defaultOpportunisticSoloMargin {
		t.Fatalf("service SoloMargin knob = %v, want %v", got, defaultOpportunisticSoloMargin)
	}
}

// With the controller disabled (the zero value), the knobs hold their
// configured values forever and every schedule is byte-identical to a
// direct TreeSchedule/ScheduleBatch call — the pre-controller service.
func TestControllerOffSchedulesByteIdentical(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	svc := mustService(t, Config{
		Scheduler:   ts,
		MaxInFlight: 4,
		BatchWindow: -1, // deterministic: no window to group under
		MaxBatch:    1,
	})
	before := svc.Tuning()
	for seed := int64(1); seed <= 6; seed++ {
		tree := testTree(t, seed, 6)
		res, err := svc.Schedule(context.Background(), tree)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ts.Schedule(tree)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.EncodeJSON(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sched.EncodeJSON(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct) {
			t.Fatalf("seed %d: served schedule differs from direct TreeSchedule", seed)
		}
	}
	if after := svc.Tuning(); after != before {
		t.Fatalf("controller-off knobs moved: %+v -> %+v", before, after)
	}
}

// controllerHarness builds a service with the controller loop NOT
// running, plus a hand-built controller over the same (resolved)
// config, so tests can drive controlStep tick by tick against a
// metrics stream they author.
func controllerHarness(t *testing.T, cfg Config) (*Service, *controller, *obs.Metrics) {
	t.Helper()
	met := obs.NewMetrics()
	cfg.Rec = met
	svc := mustService(t, cfg)
	resolved := svc.cfg
	resolved.Controller = ControllerConfig{Enable: true, Source: met}
	ctl, _ := newController(resolved)
	return svc, ctl, met
}

// Pressure ticks tighten multiplicatively (halve the cap, widen the
// window, shed a worker); idle ticks relax additively back toward the
// configured values; and full recovery restores the configured cap
// exactly (including 0 = uncapped).
func TestControllerTightensAndRelaxes(t *testing.T) {
	const p = 16
	svc, ctl, met := controllerHarness(t, Config{
		Scheduler:   testScheduler(p, 0.5, 0.7),
		MaxInFlight: 2,
		MaxQueue:    8,
		BatchWindow: 2 * time.Millisecond,
	})

	// Tick 1: 100 requests, 50 shed — far above the high band.
	met.Count("serve.requests", 100)
	met.Count("serve.rejected", 50)
	svc.controlStep(ctl)
	tun := svc.Tuning()
	if tun.MaxDegree != p/2 {
		t.Fatalf("pressure tick: MaxDegree = %d, want ceiling/2 = %d", tun.MaxDegree, p/2)
	}
	if tun.BatchWindow != 4*time.Millisecond {
		t.Fatalf("pressure tick: window = %v, want doubled 4ms", tun.BatchWindow)
	}
	if tun.SoloMargin != 16*time.Millisecond {
		t.Fatalf("pressure tick: solo margin = %v, want 4×window", tun.SoloMargin)
	}
	if tun.SchedWorkers >= ctl.baseWorkers && ctl.baseWorkers > 1 {
		t.Fatalf("pressure tick: workers = %d, want below base %d", tun.SchedWorkers, ctl.baseWorkers)
	}

	// Sustained pressure floors at MinDegree, MaxWindow, one worker.
	for i := 0; i < 20; i++ {
		met.Count("serve.requests", 100)
		met.Count("serve.rejected", 50)
		svc.controlStep(ctl)
	}
	tun = svc.Tuning()
	if tun.MaxDegree != ctl.cfg.MinDegree {
		t.Fatalf("sustained pressure: MaxDegree = %d, want floor %d", tun.MaxDegree, ctl.cfg.MinDegree)
	}
	if tun.BatchWindow != ctl.cfg.MaxWindow {
		t.Fatalf("sustained pressure: window = %v, want cap %v", tun.BatchWindow, ctl.cfg.MaxWindow)
	}
	if tun.SchedWorkers != 1 && ctl.baseWorkers > 1 {
		t.Fatalf("sustained pressure: workers = %d, want floor 1", tun.SchedWorkers)
	}

	// Idle ticks (requests flow, nothing shed) relax one step at a time
	// and eventually restore the configured knobs exactly.
	for i := 0; i < p+20; i++ {
		met.Count("serve.requests", 100)
		svc.controlStep(ctl)
	}
	tun = svc.Tuning()
	if tun.MaxDegree != 0 {
		t.Fatalf("recovered MaxDegree = %d, want configured 0 (uncapped)", tun.MaxDegree)
	}
	if tun.BatchWindow != 2*time.Millisecond {
		t.Fatalf("recovered window = %v, want configured 2ms", tun.BatchWindow)
	}
	if par.Workers(tun.SchedWorkers) != ctl.baseWorkers {
		t.Fatalf("recovered workers = %d (effective %d), want base %d",
			tun.SchedWorkers, par.Workers(tun.SchedWorkers), ctl.baseWorkers)
	}
}

// When the service can never coalesce a batch (one admitted request at
// a time, or MaxBatch 1), widening the window under pressure is pure
// added wait — no companion can ever join the group. Pressure ticks
// must still tighten the cap but leave the window and solo margin
// alone.
func TestControllerSkipsWindowWhenBatchingCannotCoalesce(t *testing.T) {
	for _, cfg := range []Config{
		{Scheduler: testScheduler(16, 0.5, 0.7), MaxInFlight: 1, MaxQueue: 8, BatchWindow: 2 * time.Millisecond},
		{Scheduler: testScheduler(16, 0.5, 0.7), MaxInFlight: 4, MaxQueue: 8, BatchWindow: 2 * time.Millisecond, MaxBatch: 1},
	} {
		svc, ctl, met := controllerHarness(t, cfg)
		if ctl.coalesce {
			t.Fatalf("coalesce = true for MaxInFlight %d / MaxBatch %d", cfg.MaxInFlight, cfg.MaxBatch)
		}
		for i := 0; i < 5; i++ {
			met.Count("serve.requests", 100)
			met.Count("serve.rejected", 50)
			svc.controlStep(ctl)
		}
		tun := svc.Tuning()
		if tun.MaxDegree != ctl.cfg.MinDegree {
			t.Fatalf("sustained pressure: MaxDegree = %d, want floor %d", tun.MaxDegree, ctl.cfg.MinDegree)
		}
		if tun.BatchWindow != 2*time.Millisecond {
			t.Fatalf("window moved to %v despite nothing to coalesce", tun.BatchWindow)
		}
		if tun.SoloMargin != 8*time.Millisecond {
			t.Fatalf("solo margin moved to %v despite nothing to coalesce", tun.SoloMargin)
		}
	}
}

// In-band ticks (between the low and high bands) hold every knob — the
// hysteresis that keeps the controller from oscillating.
func TestControllerHoldsInsideHysteresisBand(t *testing.T) {
	svc, ctl, met := controllerHarness(t, Config{
		Scheduler:   testScheduler(16, 0.5, 0.7),
		MaxInFlight: 2,
		MaxQueue:    8,
		BatchWindow: 2 * time.Millisecond,
	})
	// One pressure tick to move off the configured point.
	met.Count("serve.requests", 100)
	met.Count("serve.rejected", 50)
	svc.controlStep(ctl)
	moved := svc.Tuning()

	// Shed rate 3% sits between LowShed 1% and HighShed 5%: hold.
	for i := 0; i < 5; i++ {
		met.Count("serve.requests", 100)
		met.Count("serve.rejected", 3)
		svc.controlStep(ctl)
		if got := svc.Tuning(); got != moved {
			t.Fatalf("in-band tick %d moved the knobs: %+v -> %+v", i, moved, got)
		}
	}
}

// A retuned MaxDegree changes the fingerprint, so the schedule cache
// can never serve a schedule computed under a different cap: each cap's
// schedules live under their own keys.
func TestMaxDegreeRetuneNeverServesStaleCache(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(16, 0.5, 0.7),
		MaxInFlight: 2,
		CacheSize:   8,
		Rec:         met,
	})
	tree := testTree(t, 3, 6)
	ctx := context.Background()

	uncapped, err := svc.Schedule(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Retune the cap the way the controller would.
	svc.knobs.maxDegree.Store(1)
	capped, err := svc.Schedule(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cached {
		t.Fatal("capped request served from the uncapped cache entry")
	}
	if snap := met.Snapshot(); snap.Counters["serve.cache_misses"] != 2 {
		t.Fatalf("cache misses = %d, want 2 (one per cap)", snap.Counters["serve.cache_misses"])
	}
	ts := svc.scheduler()
	want, err := ts.Schedule(tree)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sched.EncodeJSON(capped.Schedule)
	direct, _ := sched.EncodeJSON(want)
	if !bytes.Equal(got, direct) {
		t.Fatal("capped schedule differs from a direct capped TreeSchedule")
	}
	// Both entries coexist: flipping back hits the original entry.
	svc.knobs.maxDegree.Store(0)
	back, err := svc.Schedule(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Cached {
		t.Fatal("uncapped re-request missed its still-cached entry")
	}
	if b, a := mustJSON(t, back.Schedule), mustJSON(t, uncapped.Schedule); !bytes.Equal(b, a) {
		t.Fatal("uncapped cache entry changed across the retune")
	}
}

func mustJSON(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	data, err := sched.EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The knob hammer: live retunes racing concurrent Schedule calls,
// cached and batched paths both engaged, ending in a Close racing the
// final requests. Run under -race (the adaptive-race gate), this pins
// that every knob read on the hot path is atomic — no torn reads, no
// locks, no lost requests.
func TestKnobRetuneHammerUnderLoad(t *testing.T) {
	svc := mustService(t, Config{
		Scheduler:   testScheduler(16, 0.5, 0.7),
		MaxInFlight: 4,
		MaxQueue:    64,
		BatchWindow: 500 * time.Microsecond,
		MaxBatch:    4,
		CacheSize:   4,
	})
	trees := make([]*testTreeSlot, 4)
	for i := range trees {
		trees[i] = &testTreeSlot{tree: testTree(t, int64(i+1), 5)}
	}

	stop := make(chan struct{})
	var tuner sync.WaitGroup
	tuner.Add(1)
	go func() {
		defer tuner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Walk every knob through the values the controller would.
			svc.knobs.maxDegree.Store(int64(i%5) * 2)          // 0,2,4,6,8
			svc.knobs.batchWindow.Store(int64(i%3) * int64(time.Millisecond))
			svc.knobs.soloMargin.Store(int64(4*time.Millisecond) + int64(i%7)*int64(time.Millisecond))
			svc.knobs.maxBatch.Store(int64(1 + i%4))
			svc.knobs.schedWorkers.Store(int64(1 + i%3))
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := svc.Schedule(context.Background(), trees[(g+i)%len(trees)].tree)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Schedule == nil {
					t.Error("nil schedule delivered")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	tuner.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// testTreeSlot wraps a tree so the hammer's goroutines share read-only
// pointers without the loop variable footgun.
type testTreeSlot struct{ tree *plan.TaskTree }

// The end-to-end controller loop: a service under genuine overload
// (tiny admission limit, offered load far past it) with a fast tick
// must actually tighten its knobs, and Close must stop the loop.
func TestControllerLoopReactsToOverload(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(16, 0.5, 0.7),
		MaxInFlight: 1,
		MaxQueue:    -1, // no wait queue: everything past 1 sheds
		BatchWindow: time.Millisecond,
		Controller:  ControllerConfig{Enable: true, Interval: 2 * time.Millisecond, Source: met},
		Rec:         met,
	})
	tree := testTree(t, 2, 6)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				svc.Schedule(context.Background(), tree) //nolint:errcheck // sheds expected
			}()
		}
		wg.Wait()
		if tun := svc.Tuning(); tun.MaxDegree != 0 {
			return // the controller tightened the cap: reacting
		}
	}
	t.Fatalf("controller never tightened under sustained shedding: %+v", svc.Tuning())
}

// Closing flips the moment Close begins and new submissions fail with
// ErrClosed, so health endpoints can report draining immediately.
func TestClosingReportsDrainingService(t *testing.T) {
	svc := mustService(t, Config{Scheduler: testScheduler(8, 0.5, 0.7)})
	if svc.Closing() {
		t.Fatal("fresh service reports closing")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if !svc.Closing() {
		t.Fatal("closed service does not report closing")
	}
	if _, err := svc.Schedule(context.Background(), testTree(t, 1, 4)); err != ErrClosed {
		t.Fatalf("post-close Schedule error = %v, want ErrClosed", err)
	}
}

// RetryAfter scales with queue depth and the live window, and stays
// inside [1ms, 30s] no matter how deep the backlog.
func TestRetryAfterTracksDepthAndWindow(t *testing.T) {
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 2,
		BatchWindow: 2 * time.Millisecond,
	})
	idle := svc.RetryAfter()
	if idle != 2*time.Millisecond {
		t.Fatalf("idle RetryAfter = %v, want one window", idle)
	}
	// Fake a backlog of three full rounds.
	svc.inflight.Store(2)
	svc.queued.Store(4)
	if got := svc.RetryAfter(); got != 8*time.Millisecond {
		t.Fatalf("backlogged RetryAfter = %v, want 4 rounds × 2ms", got)
	}
	// A controller-widened window stretches the estimate with it.
	svc.knobs.batchWindow.Store(int64(8 * time.Millisecond))
	if got := svc.RetryAfter(); got != 32*time.Millisecond {
		t.Fatalf("widened-window RetryAfter = %v, want 32ms", got)
	}
	// The clamp holds against absurd depth.
	svc.queued.Store(1 << 30)
	if got := svc.RetryAfter(); got != 30*time.Second {
		t.Fatalf("deep-queue RetryAfter = %v, want the 30s clamp", got)
	}
	svc.inflight.Store(0)
	svc.queued.Store(0)
}
