// Package serve is the concurrent multi-query scheduling service: the
// layer between many callers racing to schedule plans and the single
// TreeScheduler.ScheduleBatch workload interface underneath.
//
// Three mechanisms make the paper's one-query-at-a-time scheduler
// production-shaped:
//
//   - Admission control. At most MaxInFlight requests are being
//     scheduled at any instant (a semaphore), at most MaxQueue more may
//     wait for a slot, and everything beyond that is shed immediately
//     with the typed ErrOverloaded — the service never queues
//     unboundedly, so a traffic spike degrades into fast rejections
//     instead of collapsing latency for everyone.
//
//   - Window batching. Admitted requests that arrive within BatchWindow
//     of each other (up to MaxBatch) are grouped into one ScheduleBatch
//     workload, so concurrent queries time-share sites exactly like
//     independent operators of one query — the inter-query
//     resource-sharing argument of the batch scheduler, applied to live
//     traffic.
//
//   - Cancellation and deadline-aware degradation. Every request
//     carries a context.Context. A request cancelled while waiting (for
//     admission, in the batching window, or mid-schedule) returns
//     ctx.Err() promptly; the scheduler itself is context-aware, so a
//     group whose every member has gone stops burning scheduler time. A
//     request whose deadline is too close to afford the batching window
//     degrades gracefully: it skips the window and is scheduled solo.
//
// The service is strictly a coordinator: scheduling decisions are made
// by the embedded TreeScheduler, and every result is bit-identical to a
// direct ScheduleBatch call on the same group of trees (pinned by the
// race tests).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mdrs/internal/obs"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// Typed service errors, for errors.Is dispatch (HTTP handlers map
// ErrOverloaded to 503, the facade re-exports both).
var (
	// ErrOverloaded is returned when both the in-flight semaphore and
	// the bounded wait queue are full: the request is shed immediately
	// instead of queueing unboundedly.
	ErrOverloaded = errors.New("serve: overloaded: in-flight limit and wait queue full")
	// ErrClosed is returned for requests submitted to (or stranded in) a
	// service that has been Closed.
	ErrClosed = errors.New("serve: service closed")
)

// Config configures a Service. The zero value of every tuning knob
// picks a sensible default (see each field); Scheduler is mandatory.
type Config struct {
	// Scheduler produces every schedule. Its Rec recorder (if any) sees
	// the usual decision trace; the service's own counters go to Rec
	// below. Its Workers knob bounds the intra-schedule parallelism of
	// each request being scheduled, so the service's total scheduler
	// goroutine bound is MaxInFlight × Workers (each admitted request
	// runs at most one scheduling call, and each call at most Workers
	// goroutines). The effective width is surfaced once at start-up as
	// the serve.sched_workers counter.
	Scheduler sched.TreeScheduler

	// MaxInFlight bounds the number of admitted requests being batched
	// or scheduled at once — the admission semaphore. Default:
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an in-flight slot.
	// Default (0): 4×MaxInFlight. Negative: no wait queue at all — a
	// full semaphore sheds immediately.
	MaxQueue int
	// BatchWindow is how long the first request of a group waits for
	// companions before the group is scheduled. Default (0): 2ms.
	// Negative: purely opportunistic batching — a group still absorbs
	// every request already pending when it forms, but never waits for
	// more.
	BatchWindow time.Duration
	// MaxBatch caps the queries per ScheduleBatch workload. Default: 8.
	MaxBatch int
	// SoloMargin is the deadline-aware degradation threshold: a request
	// whose context deadline is nearer than this skips the batching
	// window and is scheduled solo, trading sharing for latency.
	// Default: 4×BatchWindow.
	SoloMargin time.Duration

	// CacheSize, when positive, enables the plan-fingerprint schedule
	// cache: a bounded LRU of up to CacheSize completed schedules keyed
	// by sched.TreeScheduler.Fingerprint. A repeated plan is answered
	// from the cache without admission, batching, or scheduling, and N
	// concurrent requests for the same uncached plan compute it once
	// (singleflight). Cached requests are scheduled as singleton groups
	// — never batched — so every cached schedule is deterministic per
	// fingerprint and byte-identical to TreeSchedule on the same tree.
	// Default (0): caching disabled, every request takes the batching
	// path.
	CacheSize int

	// Rec, when non-nil, receives the service's counters and histograms.
	// Every submission is classified exactly once: serve.invalid counts
	// nil or malformed trees (rejected before admission), and every
	// valid request lands in exactly one of serve.delivered,
	// serve.rejected (shed by admission control), serve.cancelled (the
	// caller's context died), serve.closed_rejects (submitted to a
	// closing service), or serve.failed (a scheduling error), so
	// serve.requests = delivered + rejected + cancelled + closed_rejects
	// + failed holds at quiescence — the arithmetic goodput is computed
	// against. serve.queue_depth and serve.inflight gauges are sampled
	// as histogram observations, serve.batch_size per dispatched group,
	// and serve.request_seconds per finished valid request. Nil disables
	// all recording.
	Rec obs.Recorder
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	switch {
	case c.BatchWindow == 0:
		c.BatchWindow = 2 * time.Millisecond
	case c.BatchWindow < 0:
		c.BatchWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.SoloMargin <= 0 {
		c.SoloMargin = 4 * c.BatchWindow
	}
	return c
}

// Result is one request's outcome: the schedule of the group the
// request was batched into, plus where in that group its tree sits.
type Result struct {
	// Schedule is the combined batch schedule: phase i of every group
	// member executes in global phase i. A group of one is exactly the
	// tree's own TreeSchedule.
	Schedule *sched.Schedule
	// Group lists the task trees scheduled together, in batch order —
	// the exact argument a direct ScheduleBatch call would reproduce
	// this Schedule from.
	Group []*plan.TaskTree
	// Index is the position of this request's tree within Group.
	Index int
	// Solo marks a request that skipped the batching window because its
	// deadline was nearer than Config.SoloMargin (deadline-aware
	// degradation). Solo results always have len(Group) == 1.
	Solo bool
	// Cached marks a result served from the schedule cache (an LRU hit
	// or a singleflight coalescence onto another request's computation).
	// Cached results always have len(Group) == 1, and Schedule may be
	// shared with other requests — it is immutable, read-only state.
	Cached bool
	// Wait is the time the request spent in the service, admission to
	// delivery.
	Wait time.Duration
}

// request is one in-flight unit: a tree, its caller's context, and the
// channel its response is delivered on. Requests are pooled: the
// deliverer and the awaiter each hold one reference, and whoever drops
// the last one recycles the struct (and its channel) for the next
// request — the serve hot path allocates no request state at steady
// load.
type request struct {
	ctx   context.Context
	tree  *plan.TaskTree
	resCh chan response // buffered(1); exactly one deliver per request
	start time.Time
	solo  bool
	refs  atomic.Int32 // pool references: deliverer + awaiter
}

type response struct {
	res *Result
	err error
}

// requestPool recycles request structs (including their buffered
// response channels) across the service's lifetime.
var requestPool = sync.Pool{
	New: func() any { return &request{resCh: make(chan response, 1)} },
}

// newRequest draws a request from the pool with two references: one
// for the deliverer (the group runner), one for the awaiter.
func newRequest(ctx context.Context, tree *plan.TaskTree) *request {
	r := requestPool.Get().(*request)
	r.ctx, r.tree, r.start, r.solo = ctx, tree, time.Now(), false
	r.refs.Store(2)
	return r
}

// unref drops one reference; the last holder recycles the request. An
// awaiter that left on ctx.Done never received the deliverer's
// response, so the channel is drained before reuse.
func (r *request) unref() {
	if r.refs.Add(-1) != 0 {
		return
	}
	select {
	case <-r.resCh:
	default:
	}
	r.ctx, r.tree = nil, nil
	requestPool.Put(r)
}

// Service is the concurrent scheduling service. Construct with New;
// the zero value is not usable.
type Service struct {
	cfg Config

	sem     chan struct{} // in-flight tokens, cap MaxInFlight
	waiters chan struct{} // wait-queue slots, cap MaxQueue
	pending chan *request // admitted requests awaiting batching
	done    chan struct{} // closed by Close
	cache   *schedCache   // nil unless Config.CacheSize > 0

	mu      sync.Mutex // guards closed and the workers Add-vs-Wait race
	closed  bool
	workers sync.WaitGroup // collector + group runners

	inflight atomic.Int64 // admitted and not yet delivered
	queued   atomic.Int64 // waiting for an in-flight slot
}

// New validates the configuration and starts the batching collector.
// Callers must Close the service to release it.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Scheduler.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		waiters: make(chan struct{}, cfg.MaxQueue),
		pending: make(chan *request, cfg.MaxInFlight),
		done:    make(chan struct{}),
		cache:   newSchedCache(cfg.CacheSize),
	}
	// Surface the effective scheduler pool width so /metricz-style
	// consumers can compute the MaxInFlight × Workers goroutine bound
	// without re-deriving GOMAXPROCS defaults.
	obs.Count(cfg.Rec, "serve.sched_workers", int64(par.Workers(cfg.Scheduler.Workers)))
	obs.Count(cfg.Rec, "serve.max_inflight", int64(cfg.MaxInFlight))
	s.workers.Add(1)
	go s.collect()
	return s, nil
}

// Close stops accepting requests and waits for the collector and every
// running group to finish. Requests already admitted (holding an
// in-flight token) are still scheduled — Close drains, it does not
// drop — while requests waiting for admission fail with ErrClosed.
// Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.workers.Wait()
	return nil
}

// InFlight reports the number of admitted requests not yet delivered.
func (s *Service) InFlight() int { return int(s.inflight.Load()) }

// Queued reports the number of requests waiting for an in-flight slot.
func (s *Service) Queued() int { return int(s.queued.Load()) }

// CacheLen reports the number of schedules currently held by the
// schedule cache; 0 when caching is disabled.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Schedule submits one task tree and blocks until its group is
// scheduled, the context is cancelled (returning ctx.Err()), or the
// service sheds it (ErrOverloaded) or closes (ErrClosed). Safe for
// arbitrary concurrent use.
//
// With Config.CacheSize > 0 a plan already in the schedule cache is
// answered immediately (Result.Cached), and a miss is scheduled as a
// singleton group and inserted; without a cache every request takes
// the batching path.
func (s *Service) Schedule(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	// Reject malformed trees at the door: inside a group a bad tree
	// would fail the whole ScheduleBatch call and take its innocent
	// batch-mates down with it. Invalid submissions are counted
	// separately and do NOT increment serve.requests — otherwise
	// malformed traffic would inflate the request rate goodput is
	// computed against.
	if tree == nil {
		obs.Count(rec, "serve.invalid", 1)
		return nil, fmt.Errorf("serve: nil task tree")
	}
	if err := tree.Validate(); err != nil {
		obs.Count(rec, "serve.invalid", 1)
		return nil, fmt.Errorf("serve: %w", err)
	}
	obs.Count(rec, "serve.requests", 1)
	start := time.Now()
	res, err := s.scheduleValid(ctx, tree)
	// Classify the outcome exactly once, here, so the counter
	// arithmetic requests = delivered + rejected + cancelled +
	// closed_rejects + failed holds at quiescence no matter which
	// internal path (cached, batched, solo, coalesced) served the
	// request.
	switch {
	case err == nil:
		obs.Count(rec, "serve.delivered", 1)
	case errors.Is(err, ErrOverloaded):
		obs.Count(rec, "serve.rejected", 1)
	case errors.Is(err, ErrClosed):
		obs.Count(rec, "serve.closed_rejects", 1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		obs.Count(rec, "serve.cancelled", 1)
	default:
		obs.Count(rec, "serve.failed", 1)
	}
	obs.Observe(rec, "serve.request_seconds", time.Since(start).Seconds())
	return res, err
}

// scheduleValid routes an already-validated request down the cached or
// batched path.
func (s *Service) scheduleValid(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cache != nil {
		return s.scheduleCached(ctx, tree)
	}
	return s.scheduleBatched(ctx, tree)
}

// scheduleCached is the cache-enabled request path: LRU hit, else join
// or lead the fingerprint's singleflight. The leader schedules the tree
// as a singleton group (no batching window — a batched schedule would
// depend on its accidental window companions, so only the singleton
// form is deterministic per fingerprint) and fills the cache; followers
// coalesce onto the leader's computation without consuming admission
// slots.
func (s *Service) scheduleCached(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	start := time.Now()
	fp := s.cfg.Scheduler.Fingerprint(tree)
	for {
		if e := s.cache.get(fp); e != nil {
			obs.Count(rec, "serve.cache_hits", 1)
			return &Result{
				Schedule: e.s,
				Group:    e.group, // shared immutable singleton group
				Cached:   true,
				Wait:     time.Since(start),
			}, nil
		}
		fl, leader := s.cache.flightFor(fp)
		if leader {
			obs.Count(rec, "serve.cache_misses", 1)
			res, err := s.scheduleSingleton(ctx, tree)
			if err != nil {
				s.cache.resolve(fp, fl, nil, nil, err)
				return nil, err
			}
			if ev := s.cache.put(fp, res.Schedule, tree); ev > 0 {
				obs.Count(rec, "serve.cache_evictions", int64(ev))
			}
			s.cache.resolve(fp, fl, res.Schedule, tree, nil)
			return res, nil
		}
		// Follower: wait for the leader's outcome without holding any
		// admission resources.
		obs.Count(rec, "serve.cache_coalesced", 1)
		select {
		case <-fl.done:
			if fl.err == nil {
				return &Result{
					Schedule: fl.s,
					Group:    []*plan.TaskTree{fl.tree},
					Cached:   true,
					Wait:     time.Since(start),
				}, nil
			}
			if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) ||
				errors.Is(fl.err, ErrOverloaded) {
				// The leader's own context died or the leader itself was
				// shed by admission control — neither says anything about
				// this request, which held no admission resources while
				// coalesced. Loop and race to become the next leader (the
				// follower's own admission attempt decides its fate);
				// ctx.Done below bounds the retries.
				continue
			}
			// Service-level failures (closed, a scheduling error for this
			// plan shape) apply to the followers too.
			return nil, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// scheduleSingleton admits one request and schedules it as a group of
// one, bypassing the collector entirely.
func (s *Service) scheduleSingleton(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	r := newRequest(ctx, tree)
	obs.Observe(rec, "serve.inflight", float64(s.inflight.Add(1)))
	if !s.spawnGroup([]*request{r}) {
		// The service is closing but this request is already admitted;
		// finish it inline rather than dropping it.
		s.runGroup([]*request{r})
	}
	return s.await(ctx, r)
}

// scheduleBatched is the original request path: admission, then the
// batching window (or a solo bypass for deadline-pressed requests).
func (s *Service) scheduleBatched(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	if err := s.admit(ctx); err != nil {
		return nil, err
	}

	r := newRequest(ctx, tree)
	obs.Observe(rec, "serve.inflight", float64(s.inflight.Add(1)))

	// With MaxBatch 1 grouping is impossible, so the collector and a
	// spawned runner would add nothing but goroutine handoffs (two
	// context switches per request): run the group of one on the
	// caller's own goroutine. The buffered response channel makes the
	// deliver-then-await sequence safe on a single goroutine.
	if s.cfg.MaxBatch == 1 {
		s.runGroup([]*request{r})
		return s.await(ctx, r)
	}

	// Deadline-aware degradation: a request that cannot afford the
	// batching window goes solo, straight past the collector.
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < s.cfg.SoloMargin {
		r.solo = true
		obs.Count(rec, "serve.solo_deadline", 1)
		if !s.spawnGroup([]*request{r}) {
			// The service is closing but this request is already
			// admitted; finish it inline rather than dropping it.
			s.runGroup([]*request{r})
		}
	} else {
		// Enqueue under the closed-flag lock: after Close flips the flag
		// nothing new enters pending, so the collector's shutdown drain
		// observes every admitted request. The send cannot block — each
		// pending entry holds a distinct in-flight token and the channel
		// has room for all MaxInFlight of them.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.release(r)
			// Nobody else ever saw this request; drop both references
			// and recycle it directly.
			r.refs.Store(1)
			r.unref()
			return nil, ErrClosed
		}
		s.pending <- r
		s.mu.Unlock()
	}

	return s.await(ctx, r)
}

// admit takes one in-flight token: immediately, else through the
// bounded wait queue, else the request is shed with ErrOverloaded.
func (s *Service) admit(ctx context.Context) error {
	rec := s.cfg.Rec
	select {
	case <-s.done:
		return ErrClosed
	default:
	}
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.waiters <- struct{}{}:
			n := s.queued.Add(1)
			obs.Observe(rec, "serve.queue_depth", float64(n))
			admitted := false
			select {
			case s.sem <- struct{}{}:
				admitted = true
			case <-ctx.Done():
			case <-s.done:
			}
			s.queued.Add(-1)
			<-s.waiters
			if !admitted {
				if err := ctx.Err(); err != nil {
					return err
				}
				return ErrClosed
			}
		default:
			return ErrOverloaded
		}
	}
	return nil
}

// await blocks until the request's response arrives or its context
// dies. The response channel is buffered and written exactly once, so
// an early ctx return never blocks the group runner; the runner still
// releases the request's token when the group completes, and the last
// reference holder recycles the request struct.
func (s *Service) await(ctx context.Context, r *request) (*Result, error) {
	select {
	case resp := <-r.resCh:
		r.unref()
		if resp.err != nil {
			return nil, resp.err
		}
		return resp.res, nil
	case <-ctx.Done():
		r.unref()
		return nil, ctx.Err()
	}
}

// collect is the batching loop: take the first pending request, hold
// the window open for companions (bounded by MaxBatch), dispatch the
// group, repeat. Exactly one collector runs per service.
func (s *Service) collect() {
	defer s.workers.Done()
	for {
		var first *request
		select {
		case first = <-s.pending:
		case <-s.done:
			s.drainPending()
			return
		}
		group := []*request{first}
		if s.cfg.BatchWindow > 0 && s.cfg.MaxBatch > 1 {
			timer := time.NewTimer(s.cfg.BatchWindow)
		window:
			for len(group) < s.cfg.MaxBatch {
				select {
				case r := <-s.pending:
					group = append(group, r)
				case <-timer.C:
					break window
				case <-s.done:
					break window
				}
			}
			timer.Stop()
		} else {
			// Opportunistic batching: absorb whatever is already pending
			// without waiting.
		drain:
			for len(group) < s.cfg.MaxBatch {
				select {
				case r := <-s.pending:
					group = append(group, r)
				default:
					break drain
				}
			}
		}
		if !s.spawnGroup(group) {
			// Shutdown interrupted the window; the group members are
			// admitted, so schedule them inline (the collector itself is
			// tracked by the WaitGroup Close waits on), then drain.
			s.runGroup(group)
			s.drainPending()
			return
		}
	}
}

// drainPending schedules every request still sitting in the pending
// channel at shutdown — they were admitted before Close, so they are
// drained gracefully, in groups of up to MaxBatch.
func (s *Service) drainPending() {
	var group []*request
	for {
		select {
		case r := <-s.pending:
			group = append(group, r)
			if len(group) == s.cfg.MaxBatch {
				s.runGroup(group)
				group = nil
			}
			continue
		default:
		}
		break
	}
	if len(group) > 0 {
		s.runGroup(group)
	}
}

// spawnGroup starts a runner goroutine for the group, registered with
// the service's WaitGroup under the closed-flag lock so Close never
// races Add against Wait. Reports false when the service is closed.
func (s *Service) spawnGroup(group []*request) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.workers.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.workers.Done()
		s.runGroup(group)
	}()
	return true
}

// runGroup schedules one group: drop members already cancelled, derive
// a group context that dies only when every member has, run
// ScheduleBatch, and deliver.
func (s *Service) runGroup(group []*request) {
	live := make([]*request, 0, len(group))
	for _, r := range group {
		if err := r.ctx.Err(); err != nil {
			s.deliver(r, response{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	trees := make([]*plan.TaskTree, len(live))
	for i, r := range live {
		trees[i] = r.tree
	}
	obs.Count(s.cfg.Rec, "serve.batches", 1)
	obs.Observe(s.cfg.Rec, "serve.batch_size", float64(len(trees)))

	gctx, cancel := groupContext(live)
	defer cancel()
	stop := obs.StartTimer(s.cfg.Rec, "serve.schedule_seconds")
	schedule, err := s.cfg.Scheduler.ScheduleBatchCtx(gctx, trees)
	stop()

	for i, r := range live {
		switch {
		case err == nil:
			s.deliver(r, response{res: &Result{
				Schedule: schedule,
				Group:    trees,
				Index:    i,
				Solo:     r.solo,
				Wait:     time.Since(r.start),
			}})
		case r.ctx.Err() != nil:
			// The group died because this member (and the others) left;
			// report the member's own cancellation, not the group's.
			s.deliver(r, response{err: r.ctx.Err()})
		default:
			s.deliver(r, response{err: err})
		}
	}
}

// groupContext returns a context cancelled once every member's context
// is done — one abandoned rider never cancels the shared ride, but a
// fully-abandoned group stops burning scheduler time. A group of one
// simply follows its only member. The returned cancel must be called
// when the group's work ends; it also reaps the watcher goroutines.
func groupContext(group []*request) (context.Context, context.CancelFunc) {
	if len(group) == 1 {
		return context.WithCancel(group[0].ctx)
	}
	var remaining atomic.Int64
	for _, r := range group {
		if r.ctx.Done() == nil {
			// A member that can never be cancelled keeps the group alive
			// forever; no watchers needed.
			return context.WithCancel(context.Background())
		}
		remaining.Add(1)
	}
	gctx, cancel := context.WithCancel(context.Background())
	for _, r := range group {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if remaining.Add(-1) == 0 {
					cancel()
				}
			case <-gctx.Done():
			}
		}(r.ctx.Done())
	}
	return gctx, cancel
}

// deliver hands the response to the waiting Schedule call (non-blocking:
// the channel is buffered and written exactly once), releases the
// request's in-flight token, and drops the deliverer's pool reference.
func (s *Service) deliver(r *request, resp response) {
	r.resCh <- resp
	s.release(r)
	r.unref()
}

// release returns the request's admission token.
func (s *Service) release(*request) {
	s.inflight.Add(-1)
	<-s.sem
}
