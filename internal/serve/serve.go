// Package serve is the concurrent multi-query scheduling service: the
// layer between many callers racing to schedule plans and the single
// TreeScheduler.ScheduleBatch workload interface underneath.
//
// Three mechanisms make the paper's one-query-at-a-time scheduler
// production-shaped:
//
//   - Admission control. At most MaxInFlight requests are being
//     scheduled at any instant (a semaphore), at most MaxQueue more may
//     wait for a slot, and everything beyond that is shed immediately
//     with the typed ErrOverloaded — the service never queues
//     unboundedly, so a traffic spike degrades into fast rejections
//     instead of collapsing latency for everyone.
//
//   - Window batching. Admitted requests that arrive within BatchWindow
//     of each other (up to MaxBatch) are grouped into one ScheduleBatch
//     workload, so concurrent queries time-share sites exactly like
//     independent operators of one query — the inter-query
//     resource-sharing argument of the batch scheduler, applied to live
//     traffic.
//
//   - Cancellation and deadline-aware degradation. Every request
//     carries a context.Context. A request cancelled while waiting (for
//     admission, in the batching window, or mid-schedule) returns
//     ctx.Err() promptly; the scheduler itself is context-aware, so a
//     group whose every member has gone stops burning scheduler time. A
//     request whose deadline is too close to afford the batching window
//     degrades gracefully: it skips the window and is scheduled solo.
//
// The service is strictly a coordinator: scheduling decisions are made
// by the embedded TreeScheduler, and every result is bit-identical to a
// direct ScheduleBatch call on the same group of trees (pinned by the
// race tests).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// Typed service errors, for errors.Is dispatch (HTTP handlers map
// ErrOverloaded to 503, the facade re-exports both).
var (
	// ErrOverloaded is returned when both the in-flight semaphore and
	// the bounded wait queue are full: the request is shed immediately
	// instead of queueing unboundedly.
	ErrOverloaded = errors.New("serve: overloaded: in-flight limit and wait queue full")
	// ErrClosed is returned for requests submitted to (or stranded in) a
	// service that has been Closed.
	ErrClosed = errors.New("serve: service closed")
)

// Config configures a Service. The zero value of every tuning knob
// picks a sensible default (see each field); Scheduler is mandatory.
type Config struct {
	// Scheduler produces every schedule. Its Rec recorder (if any) sees
	// the usual decision trace; the service's own counters go to Rec
	// below. Its Workers knob bounds the intra-schedule parallelism of
	// each request being scheduled, so the service's total scheduler
	// goroutine bound is MaxInFlight × Workers (each admitted request
	// runs at most one scheduling call, and each call at most Workers
	// goroutines). The effective width is surfaced once at start-up as
	// the serve.sched_workers counter.
	Scheduler sched.TreeScheduler

	// MaxInFlight bounds the number of admitted requests being batched
	// or scheduled at once — the admission semaphore. Default:
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an in-flight slot.
	// Default (0): 4×MaxInFlight. Negative: no wait queue at all — a
	// full semaphore sheds immediately.
	MaxQueue int
	// BatchWindow is how long the first request of a group waits for
	// companions before the group is scheduled. Default (0): 2ms.
	// Negative: purely opportunistic batching — a group still absorbs
	// every request already pending when it forms, but never waits for
	// more.
	BatchWindow time.Duration
	// MaxBatch caps the queries per ScheduleBatch workload. Default: 8.
	MaxBatch int
	// SoloMargin is the deadline-aware degradation threshold: a request
	// whose context deadline is nearer than this skips the batching
	// window and is scheduled solo, trading sharing for latency.
	// Default: 4×BatchWindow.
	SoloMargin time.Duration

	// Controller configures the adaptive inter/intra-query parallelism
	// controller (controller.go): a periodic feedback loop that observes
	// queue depth, shed rate, and the request-latency histogram and
	// retunes the batching window, the per-query parallelism cap
	// (TreeScheduler.MaxDegree), and the scheduler pool width
	// (TreeScheduler.Workers) through the service's atomic knobs. The
	// zero value leaves the controller disabled: every knob then holds
	// its configured value for the service's lifetime and behavior is
	// identical to a controller-free build (pinned by the invariance
	// tests).
	Controller ControllerConfig

	// CacheSize, when positive, enables the plan-fingerprint schedule
	// cache: a bounded LRU of up to CacheSize completed schedules keyed
	// by sched.TreeScheduler.Fingerprint. A repeated plan is answered
	// from the cache without admission, batching, or scheduling, and N
	// concurrent requests for the same uncached plan compute it once
	// (singleflight). Cached requests are scheduled as singleton groups
	// — never batched — so every cached schedule is deterministic per
	// fingerprint and byte-identical to TreeSchedule on the same tree.
	// Default (0): caching disabled, every request takes the batching
	// path.
	CacheSize int

	// Optimizer, when non-nil, enables Service.Optimize: the streaming
	// bound-interleaved plan search run under the service's admission
	// control, warm-started from the schedule cache's per-fingerprint
	// completed responses (see optimize.go). Nil leaves Optimize
	// returning ErrNoOptimizer; Schedule is unaffected either way.
	Optimizer *OptimizerConfig

	// Rec, when non-nil, receives the service's counters and histograms.
	// Every submission is classified exactly once: serve.invalid counts
	// nil or malformed trees (rejected before admission), and every
	// valid request lands in exactly one of serve.delivered,
	// serve.rejected (shed by admission control), serve.cancelled (the
	// caller's context died), serve.closed_rejects (submitted to a
	// closing service), or serve.failed (a scheduling error), so
	// serve.requests = delivered + rejected + cancelled + closed_rejects
	// + failed holds at quiescence — the arithmetic goodput is computed
	// against. serve.queue_depth and serve.inflight gauges are sampled
	// as histogram observations, serve.batch_size per dispatched group,
	// and serve.request_seconds per finished valid request. Nil disables
	// all recording.
	Rec obs.Recorder
}

// defaultOpportunisticSoloMargin is the SoloMargin fallback when the
// batching window is opportunistic (BatchWindow < 0, normalized to 0):
// the proportional default 4×BatchWindow would collapse to 0 there,
// leaving deadline-aware solo degradation to fire only for deadlines
// that have already expired.
const defaultOpportunisticSoloMargin = 8 * time.Millisecond

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	switch {
	case c.BatchWindow == 0:
		c.BatchWindow = 2 * time.Millisecond
	case c.BatchWindow < 0:
		c.BatchWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.SoloMargin <= 0 {
		if c.BatchWindow > 0 {
			c.SoloMargin = 4 * c.BatchWindow
		} else {
			c.SoloMargin = defaultOpportunisticSoloMargin
		}
	}
	return c
}

// Result is one request's outcome: the schedule of the group the
// request was batched into, plus where in that group its tree sits.
type Result struct {
	// Schedule is the combined batch schedule: phase i of every group
	// member executes in global phase i. A group of one is exactly the
	// tree's own TreeSchedule.
	Schedule *sched.Schedule
	// Group lists the task trees scheduled together, in batch order —
	// the exact argument a direct ScheduleBatch call would reproduce
	// this Schedule from.
	Group []*plan.TaskTree
	// Index is the position of this request's tree within Group.
	Index int
	// Solo marks a request that skipped the batching window because its
	// deadline was nearer than Config.SoloMargin (deadline-aware
	// degradation). Solo results always have len(Group) == 1.
	Solo bool
	// Cached marks a result served from the schedule cache (an LRU hit
	// or a singleflight coalescence onto another request's computation).
	// Cached results always have len(Group) == 1, and Schedule may be
	// shared with other requests — it is immutable, read-only state.
	Cached bool
	// Wait is the time the request spent in the service, admission to
	// delivery.
	Wait time.Duration
}

// request is one in-flight unit: a tree, its caller's context, and the
// channel its response is delivered on. Requests are pooled: the
// deliverer and the awaiter each hold one reference, and whoever drops
// the last one recycles the struct (and its channel) for the next
// request — the serve hot path allocates no request state at steady
// load.
type request struct {
	ctx   context.Context
	tree  *plan.TaskTree
	resCh chan response // buffered(1); exactly one deliver per request
	start time.Time
	solo  bool
	refs  atomic.Int32 // pool references: deliverer + awaiter
}

type response struct {
	res *Result
	err error
}

// requestPool recycles request structs (including their buffered
// response channels) across the service's lifetime.
var requestPool = sync.Pool{
	New: func() any { return &request{resCh: make(chan response, 1)} },
}

// newRequest draws a request from the pool with two references: one
// for the deliverer (the group runner), one for the awaiter.
func newRequest(ctx context.Context, tree *plan.TaskTree) *request {
	r := requestPool.Get().(*request)
	r.ctx, r.tree, r.start, r.solo = ctx, tree, time.Now(), false
	r.refs.Store(2)
	return r
}

// unref drops one reference; the last holder recycles the request. An
// awaiter that left on ctx.Done never received the deliverer's
// response, so the channel is drained before reuse.
func (r *request) unref() {
	if r.refs.Add(-1) != 0 {
		return
	}
	select {
	case <-r.resCh:
	default:
	}
	r.ctx, r.tree = nil, nil
	requestPool.Put(r)
}

// knobs holds the service's dynamically tunable parameters. Every
// field is read atomically on the request hot path and written only by
// the adaptive controller (or never, when the controller is disabled),
// so live retuning cannot race the collector or the request paths —
// previously the collector read cfg.BatchWindow, cfg.SoloMargin, and
// cfg.MaxBatch from plain struct fields on every request, which was
// benign only because nothing mutated them.
type knobs struct {
	batchWindow  atomic.Int64 // ns; <= 0 means opportunistic batching
	soloMargin   atomic.Int64 // ns
	maxBatch     atomic.Int64 // queries per ScheduleBatch workload
	maxDegree    atomic.Int64 // per-query parallelism cap; 0 = uncapped
	schedWorkers atomic.Int64 // TreeScheduler.Workers; 0 = GOMAXPROCS
}

// Service is the concurrent scheduling service. Construct with New;
// the zero value is not usable.
type Service struct {
	cfg Config

	sem     chan struct{} // in-flight tokens, cap MaxInFlight
	waiters chan struct{} // wait-queue slots, cap MaxQueue
	pending chan *request // admitted requests awaiting batching
	done    chan struct{} // closed by Close
	cache   *schedCache   // nil unless Config.CacheSize > 0
	knobs   knobs         // live tunables; static unless the controller runs

	// optCache is the cost-model memo shared across every Optimize
	// call's bounds and schedules; nil unless Config.Optimizer is set.
	optCache *costmodel.Cache

	mu      sync.Mutex // guards closed and the workers Add-vs-Wait race
	closed  bool
	closing atomic.Bool    // set at the start of Close, before the drain
	workers sync.WaitGroup // collector + controller + group runners

	inflight atomic.Int64 // admitted and not yet delivered
	queued   atomic.Int64 // waiting for an in-flight slot
}

// batchWindow reads the live batching window.
func (s *Service) batchWindow() time.Duration {
	return time.Duration(s.knobs.batchWindow.Load())
}

// soloMargin reads the live deadline-degradation threshold.
func (s *Service) soloMargin() time.Duration {
	return time.Duration(s.knobs.soloMargin.Load())
}

// maxBatch reads the live batch-size cap.
func (s *Service) maxBatch() int { return int(s.knobs.maxBatch.Load()) }

// scheduler returns the configured TreeScheduler with the live knob
// overlay applied: the current per-query parallelism cap and scheduler
// pool width. With the controller disabled both knobs hold their
// configured values, so the result is exactly cfg.Scheduler.
func (s *Service) scheduler() sched.TreeScheduler {
	ts := s.cfg.Scheduler
	ts.MaxDegree = int(s.knobs.maxDegree.Load())
	ts.Workers = int(s.knobs.schedWorkers.Load())
	return ts
}

// New validates the configuration and starts the batching collector
// (and, when enabled, the adaptive controller). Callers must Close the
// service to release it.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Scheduler.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var ctl *controller
	if cfg.Controller.Enable {
		// newController may rewrite cfg.Rec (teeing in a private metrics
		// recorder when none is observable), so it runs before the knobs
		// and channels are seeded from cfg.
		ctl, cfg = newController(cfg)
	}
	s := &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		waiters: make(chan struct{}, cfg.MaxQueue),
		pending: make(chan *request, cfg.MaxInFlight),
		done:    make(chan struct{}),
		cache:   newSchedCache(cfg.CacheSize),
	}
	if cfg.Optimizer != nil {
		// One memo for the lifetime of the service: every Optimize
		// call's candidate bounds and schedules share it. Reuse the
		// scheduler's own cache when one is configured so the search and
		// the request path price operators once between them.
		if cfg.Scheduler.Cache != nil {
			s.optCache = cfg.Scheduler.Cache
		} else {
			s.optCache = costmodel.NewCache(cfg.Scheduler.Model)
		}
	}
	// Seed the live knobs from the resolved configuration; without a
	// controller these stores are the knobs' only writes, so behavior is
	// exactly the static pre-knob service.
	s.knobs.batchWindow.Store(int64(cfg.BatchWindow))
	s.knobs.soloMargin.Store(int64(cfg.SoloMargin))
	s.knobs.maxBatch.Store(int64(cfg.MaxBatch))
	s.knobs.maxDegree.Store(int64(cfg.Scheduler.MaxDegree))
	s.knobs.schedWorkers.Store(int64(cfg.Scheduler.Workers))
	// Surface the effective scheduler pool width so /metricz-style
	// consumers can compute the MaxInFlight × Workers goroutine bound
	// without re-deriving GOMAXPROCS defaults.
	obs.Count(cfg.Rec, "serve.sched_workers", int64(par.Workers(cfg.Scheduler.Workers)))
	obs.Count(cfg.Rec, "serve.max_inflight", int64(cfg.MaxInFlight))
	s.workers.Add(1)
	go s.collect()
	if ctl != nil {
		s.workers.Add(1)
		go s.control(ctl)
	}
	return s, nil
}

// Close stops accepting requests and waits for the collector and every
// running group to finish. Requests already admitted (holding an
// in-flight token) are still scheduled — Close drains, it does not
// drop — while requests waiting for admission fail with ErrClosed.
// Close is idempotent.
func (s *Service) Close() error {
	s.closing.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.workers.Wait()
	return nil
}

// Closing reports whether Close has begun: the service is draining (or
// already closed) and new requests fail with ErrClosed. Health
// endpoints should stop reporting ready once this flips, so a load
// balancer routes around the dying instance instead of feeding it
// traffic that will only be rejected.
func (s *Service) Closing() bool { return s.closing.Load() }

// InFlight reports the number of admitted requests not yet delivered.
func (s *Service) InFlight() int { return int(s.inflight.Load()) }

// Queued reports the number of requests waiting for an in-flight slot.
func (s *Service) Queued() int { return int(s.queued.Load()) }

// CacheLen reports the number of schedules currently held by the
// schedule cache; 0 when caching is disabled.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Tuning is a point-in-time copy of the service's live knob values —
// the configured values until the adaptive controller (if enabled)
// retunes them.
type Tuning struct {
	BatchWindow  time.Duration
	SoloMargin   time.Duration
	MaxBatch     int
	MaxDegree    int
	SchedWorkers int
}

// Tuning reports the current knob values, read atomically. Purely
// observational; the values may be retuned the instant after.
func (s *Service) Tuning() Tuning {
	return Tuning{
		BatchWindow:  s.batchWindow(),
		SoloMargin:   s.soloMargin(),
		MaxBatch:     s.maxBatch(),
		MaxDegree:    int(s.knobs.maxDegree.Load()),
		SchedWorkers: int(s.knobs.schedWorkers.Load()),
	}
}

// RetryAfter estimates, from live state, how long a shed caller should
// wait before retrying: the admission pipeline's current depth
// (in-flight plus queued) drains roughly MaxInFlight requests per
// batching window, so the estimate is one window per pending round.
// The result is clamped to [1ms, 30s] — never zero, so HTTP handlers
// can ceil it to whole Retry-After seconds, and never unbounded, so a
// deep queue at a wide window cannot tell clients to go away for
// minutes.
func (s *Service) RetryAfter() time.Duration {
	w := s.batchWindow()
	if w <= 0 {
		// Opportunistic batching has no window to wait out; charge a
		// nominal service quantum per round instead.
		w = time.Millisecond
	}
	depth := int(s.inflight.Load()) + int(s.queued.Load())
	rounds := depth/s.cfg.MaxInFlight + 1
	d := time.Duration(rounds) * w
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Schedule submits one task tree and blocks until its group is
// scheduled, the context is cancelled (returning ctx.Err()), or the
// service sheds it (ErrOverloaded) or closes (ErrClosed). Safe for
// arbitrary concurrent use.
//
// With Config.CacheSize > 0 a plan already in the schedule cache is
// answered immediately (Result.Cached), and a miss is scheduled as a
// singleton group and inserted; without a cache every request takes
// the batching path.
func (s *Service) Schedule(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	// Reject malformed trees at the door: inside a group a bad tree
	// would fail the whole ScheduleBatch call and take its innocent
	// batch-mates down with it. Invalid submissions are counted
	// separately and do NOT increment serve.requests — otherwise
	// malformed traffic would inflate the request rate goodput is
	// computed against.
	if tree == nil {
		obs.Count(rec, "serve.invalid", 1)
		return nil, fmt.Errorf("serve: nil task tree")
	}
	if err := tree.Validate(); err != nil {
		obs.Count(rec, "serve.invalid", 1)
		return nil, fmt.Errorf("serve: %w", err)
	}
	obs.Count(rec, "serve.requests", 1)
	start := time.Now()
	res, err := s.scheduleValid(ctx, tree)
	// Classify the outcome exactly once, here, so the counter
	// arithmetic requests = delivered + rejected + cancelled +
	// closed_rejects + failed holds at quiescence no matter which
	// internal path (cached, batched, solo, coalesced) served the
	// request.
	switch {
	case err == nil:
		obs.Count(rec, "serve.delivered", 1)
	case errors.Is(err, ErrOverloaded):
		obs.Count(rec, "serve.rejected", 1)
	case errors.Is(err, ErrClosed):
		obs.Count(rec, "serve.closed_rejects", 1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		obs.Count(rec, "serve.cancelled", 1)
	default:
		obs.Count(rec, "serve.failed", 1)
	}
	obs.Observe(rec, "serve.request_seconds", time.Since(start).Seconds())
	return res, err
}

// scheduleValid routes an already-validated request down the cached or
// batched path.
func (s *Service) scheduleValid(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cache != nil {
		return s.scheduleCached(ctx, tree)
	}
	return s.scheduleBatched(ctx, tree)
}

// scheduleCached is the cache-enabled request path: LRU hit, else join
// or lead the fingerprint's singleflight. The leader schedules the tree
// as a singleton group (no batching window — a batched schedule would
// depend on its accidental window companions, so only the singleton
// form is deterministic per fingerprint) and fills the cache; followers
// coalesce onto the leader's computation without consuming admission
// slots.
func (s *Service) scheduleCached(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	start := time.Now()
	// One scheduler snapshot serves the whole request: the fingerprint
	// and the leader's computation must observe the same MaxDegree, or a
	// controller retune between the two would file a schedule computed
	// under one cap beneath another cap's key. The cap participates in
	// the fingerprint, so each cap's schedules live under their own keys
	// and a stale-cap hit is structurally impossible.
	ts := s.scheduler()
	fp := ts.Fingerprint(tree)
	for {
		if e := s.cache.get(fp); e != nil {
			obs.Count(rec, "serve.cache_hits", 1)
			return &Result{
				Schedule: e.s,
				Group:    e.group, // shared immutable singleton group
				Cached:   true,
				Wait:     time.Since(start),
			}, nil
		}
		fl, leader := s.cache.flightFor(fp)
		if leader {
			obs.Count(rec, "serve.cache_misses", 1)
			res, err := s.scheduleSingleton(ctx, tree, ts)
			if err != nil {
				s.cache.resolve(fp, fl, nil, nil, err)
				return nil, err
			}
			if ev := s.cache.put(fp, res.Schedule, tree); ev > 0 {
				obs.Count(rec, "serve.cache_evictions", int64(ev))
			}
			s.cache.resolve(fp, fl, res.Schedule, tree, nil)
			return res, nil
		}
		// Follower: wait for the leader's outcome without holding any
		// admission resources.
		obs.Count(rec, "serve.cache_coalesced", 1)
		select {
		case <-fl.done:
			if fl.err == nil {
				return &Result{
					Schedule: fl.s,
					Group:    []*plan.TaskTree{fl.tree},
					Cached:   true,
					Wait:     time.Since(start),
				}, nil
			}
			if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) ||
				errors.Is(fl.err, ErrOverloaded) {
				// The leader's own context died or the leader itself was
				// shed by admission control — neither says anything about
				// this request, which held no admission resources while
				// coalesced. Loop and race to become the next leader (the
				// follower's own admission attempt decides its fate);
				// ctx.Done below bounds the retries.
				continue
			}
			// Service-level failures (closed, a scheduling error for this
			// plan shape) apply to the followers too.
			return nil, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// scheduleSingleton admits one request and schedules it as a group of
// one with the given scheduler snapshot, bypassing the collector
// entirely.
func (s *Service) scheduleSingleton(ctx context.Context, tree *plan.TaskTree, ts sched.TreeScheduler) (*Result, error) {
	rec := s.cfg.Rec
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	r := newRequest(ctx, tree)
	obs.Observe(rec, "serve.inflight", float64(s.inflight.Add(1)))
	if !s.spawnGroupAs(ts, []*request{r}) {
		// The service is closing but this request is already admitted;
		// finish it inline rather than dropping it.
		s.runGroupAs(ts, []*request{r})
	}
	return s.await(ctx, r)
}

// scheduleBatched is the original request path: admission, then the
// batching window (or a solo bypass for deadline-pressed requests).
func (s *Service) scheduleBatched(ctx context.Context, tree *plan.TaskTree) (*Result, error) {
	rec := s.cfg.Rec
	if err := s.admit(ctx); err != nil {
		return nil, err
	}

	r := newRequest(ctx, tree)
	obs.Observe(rec, "serve.inflight", float64(s.inflight.Add(1)))

	// With MaxBatch 1 grouping is impossible, so the collector and a
	// spawned runner would add nothing but goroutine handoffs (two
	// context switches per request): run the group of one on the
	// caller's own goroutine. The buffered response channel makes the
	// deliver-then-await sequence safe on a single goroutine.
	if s.maxBatch() == 1 {
		s.runGroup([]*request{r})
		return s.await(ctx, r)
	}

	// Deadline-aware degradation: a request that cannot afford the
	// batching window goes solo, straight past the collector.
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < s.soloMargin() {
		r.solo = true
		obs.Count(rec, "serve.solo_deadline", 1)
		if !s.spawnGroup([]*request{r}) {
			// The service is closing but this request is already
			// admitted; finish it inline rather than dropping it.
			s.runGroup([]*request{r})
		}
	} else {
		// Enqueue under the closed-flag lock: after Close flips the flag
		// nothing new enters pending, so the collector's shutdown drain
		// observes every admitted request. The send cannot block — each
		// pending entry holds a distinct in-flight token and the channel
		// has room for all MaxInFlight of them.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.release(r)
			// Nobody else ever saw this request; drop both references
			// and recycle it directly.
			r.refs.Store(1)
			r.unref()
			return nil, ErrClosed
		}
		s.pending <- r
		s.mu.Unlock()
	}

	return s.await(ctx, r)
}

// admit takes one in-flight token: immediately, else through the
// bounded wait queue, else the request is shed with ErrOverloaded.
func (s *Service) admit(ctx context.Context) error {
	rec := s.cfg.Rec
	select {
	case <-s.done:
		return ErrClosed
	default:
	}
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.waiters <- struct{}{}:
			n := s.queued.Add(1)
			obs.Observe(rec, "serve.queue_depth", float64(n))
			admitted := false
			select {
			case s.sem <- struct{}{}:
				admitted = true
			case <-ctx.Done():
			case <-s.done:
			}
			s.queued.Add(-1)
			<-s.waiters
			if !admitted {
				if err := ctx.Err(); err != nil {
					return err
				}
				return ErrClosed
			}
		default:
			return ErrOverloaded
		}
	}
	return nil
}

// await blocks until the request's response arrives or its context
// dies. The response channel is buffered and written exactly once, so
// an early ctx return never blocks the group runner; the runner still
// releases the request's token when the group completes, and the last
// reference holder recycles the request struct.
func (s *Service) await(ctx context.Context, r *request) (*Result, error) {
	select {
	case resp := <-r.resCh:
		r.unref()
		if resp.err != nil {
			return nil, resp.err
		}
		return resp.res, nil
	case <-ctx.Done():
		r.unref()
		return nil, ctx.Err()
	}
}

// collect is the batching loop: take the first pending request, hold
// the window open for companions (bounded by MaxBatch), dispatch the
// group, repeat. Exactly one collector runs per service. The window
// and batch-size knobs are re-read per group, so a controller retune
// takes effect at the next group boundary without racing an open
// window.
func (s *Service) collect() {
	defer s.workers.Done()
	for {
		var first *request
		select {
		case first = <-s.pending:
		case <-s.done:
			s.drainPending()
			return
		}
		group := []*request{first}
		window, maxBatch := s.batchWindow(), s.maxBatch()
		if window > 0 && maxBatch > 1 {
			timer := time.NewTimer(window)
		window:
			for len(group) < maxBatch {
				select {
				case r := <-s.pending:
					group = append(group, r)
				case <-timer.C:
					break window
				case <-s.done:
					break window
				}
			}
			timer.Stop()
		} else {
			// Opportunistic batching: absorb whatever is already pending
			// without waiting.
		drain:
			for len(group) < maxBatch {
				select {
				case r := <-s.pending:
					group = append(group, r)
				default:
					break drain
				}
			}
		}
		if !s.spawnGroup(group) {
			// Shutdown interrupted the window; the group members are
			// admitted, so schedule them inline (the collector itself is
			// tracked by the WaitGroup Close waits on), then drain.
			s.runGroup(group)
			s.drainPending()
			return
		}
	}
}

// drainPending schedules every request still sitting in the pending
// channel at shutdown — they were admitted before Close, so they are
// drained gracefully, in groups of up to MaxBatch.
func (s *Service) drainPending() {
	maxBatch := s.maxBatch()
	var group []*request
	for {
		select {
		case r := <-s.pending:
			group = append(group, r)
			if len(group) == maxBatch {
				s.runGroup(group)
				group = nil
			}
			continue
		default:
		}
		break
	}
	if len(group) > 0 {
		s.runGroup(group)
	}
}

// spawnGroup is spawnGroupAs with the scheduler's live knob overlay
// captured at spawn time.
func (s *Service) spawnGroup(group []*request) bool {
	return s.spawnGroupAs(s.scheduler(), group)
}

// spawnGroupAs starts a runner goroutine for the group, registered
// with the service's WaitGroup under the closed-flag lock so Close
// never races Add against Wait. Reports false when the service is
// closed.
func (s *Service) spawnGroupAs(ts sched.TreeScheduler, group []*request) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.workers.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.workers.Done()
		s.runGroupAs(ts, group)
	}()
	return true
}

// runGroup is runGroupAs with the scheduler's live knob overlay
// captured at call time.
func (s *Service) runGroup(group []*request) {
	s.runGroupAs(s.scheduler(), group)
}

// runGroupAs schedules one group with the given scheduler snapshot:
// drop members already cancelled, derive a group context that dies
// only when every member has, run ScheduleBatch, and deliver. Cached
// singletons pass the snapshot their fingerprint was computed with;
// batched groups capture the knobs at dispatch.
func (s *Service) runGroupAs(ts sched.TreeScheduler, group []*request) {
	live := make([]*request, 0, len(group))
	for _, r := range group {
		if err := r.ctx.Err(); err != nil {
			s.deliver(r, response{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	trees := make([]*plan.TaskTree, len(live))
	for i, r := range live {
		trees[i] = r.tree
	}
	obs.Count(s.cfg.Rec, "serve.batches", 1)
	obs.Observe(s.cfg.Rec, "serve.batch_size", float64(len(trees)))

	gctx, cancel := groupContext(live)
	defer cancel()
	stop := obs.StartTimer(s.cfg.Rec, "serve.schedule_seconds")
	schedule, err := ts.ScheduleBatchCtx(gctx, trees)
	stop()

	for i, r := range live {
		switch {
		case err == nil:
			s.deliver(r, response{res: &Result{
				Schedule: schedule,
				Group:    trees,
				Index:    i,
				Solo:     r.solo,
				Wait:     time.Since(r.start),
			}})
		case r.ctx.Err() != nil:
			// The group died because this member (and the others) left;
			// report the member's own cancellation, not the group's.
			s.deliver(r, response{err: r.ctx.Err()})
		default:
			s.deliver(r, response{err: err})
		}
	}
}

// groupContext returns a context cancelled once every member's context
// is done — one abandoned rider never cancels the shared ride, but a
// fully-abandoned group stops burning scheduler time. A group of one
// simply follows its only member. The returned cancel must be called
// when the group's work ends; it also reaps the watcher goroutines.
func groupContext(group []*request) (context.Context, context.CancelFunc) {
	if len(group) == 1 {
		return context.WithCancel(group[0].ctx)
	}
	var remaining atomic.Int64
	for _, r := range group {
		if r.ctx.Done() == nil {
			// A member that can never be cancelled keeps the group alive
			// forever; no watchers needed.
			return context.WithCancel(context.Background())
		}
		remaining.Add(1)
	}
	gctx, cancel := context.WithCancel(context.Background())
	for _, r := range group {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if remaining.Add(-1) == 0 {
					cancel()
				}
			case <-gctx.Done():
			}
		}(r.ctx.Done())
	}
	return gctx, cancel
}

// deliver hands the response to the waiting Schedule call (non-blocking:
// the channel is buffered and written exactly once), releases the
// request's in-flight token, and drops the deliverer's pool reference.
func (s *Service) deliver(r *request, resp response) {
	r.resCh <- resp
	s.release(r)
	r.unref()
}

// release returns the request's admission token.
func (s *Service) release(*request) {
	s.inflight.Add(-1)
	<-s.sem
}
