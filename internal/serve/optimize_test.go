package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"mdrs/internal/obs"
	"mdrs/internal/optimizer"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

func optimizeRels(t testing.TB, seed int64, count int) []*query.Relation {
	t.Helper()
	rels, err := optimizer.RandomRelations(rand.New(rand.NewSource(seed)), count, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return rels
}

func TestOptimizeRequiresConfig(t *testing.T) {
	svc := mustService(t, Config{Scheduler: testScheduler(16, 0.5, 0.7)})
	_, err := svc.Optimize(context.Background(), rand.New(rand.NewSource(1)), optimizeRels(t, 1, 4))
	if !errors.Is(err, ErrNoOptimizer) {
		t.Fatalf("err = %v, want ErrNoOptimizer", err)
	}
}

// Optimize must return exactly what a direct streaming search under the
// service's scheduler parameters returns — same winner, byte-identical
// schedule — and a second run over the same catalog must warm-start
// from the cache: at least the winner comes back without TreeSchedule.
func TestOptimizeMatchesDirectSearchAndWarmStarts(t *testing.T) {
	for _, joins := range []int{3, 6} {
		ts := testScheduler(32, 0.5, 0.7)
		met := obs.NewMetrics()
		svc := mustService(t, Config{
			Scheduler: ts,
			CacheSize: 64,
			Optimizer: &OptimizerConfig{Candidates: 8},
			Rec:       met,
		})
		rels := optimizeRels(t, int64(100+joins), joins+1)

		direct := optimizer.Search{
			Model: ts.Model, Overlap: ts.Overlap, P: ts.P, F: ts.F,
			Candidates: 8, Streaming: true,
		}
		want, err := direct.Best(rand.New(rand.NewSource(7)), rels)
		if err != nil {
			t.Fatal(err)
		}

		cold, err := svc.Optimize(context.Background(), rand.New(rand.NewSource(7)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Best.Index != want.Best.Index {
			t.Fatalf("joins=%d: service winner %d, direct winner %d", joins, cold.Best.Index, want.Best.Index)
		}
		wantBytes, err := sched.EncodeJSON(want.Best.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		coldBytes, err := sched.EncodeJSON(cold.Best.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(coldBytes, wantBytes) {
			t.Fatalf("joins=%d: service winner schedule differs from direct search", joins)
		}

		// The winner was written back: a warm run prunes from an exact
		// achieved response and serves at least one candidate (the
		// winner itself, and possibly others) from the cache.
		warm, err := svc.Optimize(context.Background(), rand.New(rand.NewSource(7)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if warm.WarmHits == 0 {
			t.Fatalf("joins=%d: second Optimize had no warm hits", joins)
		}
		if warm.Best.Index != want.Best.Index {
			t.Fatalf("joins=%d: warm winner %d, want %d", joins, warm.Best.Index, want.Best.Index)
		}
		warmBytes, err := sched.EncodeJSON(warm.Best.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(warmBytes, wantBytes) {
			t.Fatalf("joins=%d: warm winner schedule differs", joins)
		}
		if warm.Scheduled > cold.Scheduled {
			t.Fatalf("joins=%d: warm run scheduled %d > cold %d", joins, warm.Scheduled, cold.Scheduled)
		}
	}
}

// The winner's schedule lands in the schedule cache under its
// fingerprint: a subsequent Schedule of the winning plan is a cache
// hit, not a fresh TreeSchedule.
func TestOptimizeWinnerFeedsScheduleCache(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler: ts,
		CacheSize: 32,
		MaxBatch:  1,
		Optimizer: &OptimizerConfig{},
		Rec:       met,
	})
	rels := optimizeRels(t, 42, 4)
	res, err := svc.Optimize(context.Background(), rand.New(rand.NewSource(9)), rels)
	if err != nil {
		t.Fatal(err)
	}
	if svc.CacheLen() == 0 {
		t.Fatal("optimize left the schedule cache empty")
	}
	tt := plan.MustNewTaskTree(plan.MustExpand(res.Best.Plan))
	before := met.Snapshot().Counters["serve.cache_hits"]
	got, err := svc.Schedule(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	after := met.Snapshot().Counters["serve.cache_hits"]
	if after != before+1 {
		t.Fatalf("scheduling the winner: cache hits %d -> %d, want a hit", before, after)
	}
	gotBytes, err := sched.EncodeJSON(got.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := sched.EncodeJSON(res.Best.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("cached winner schedule differs from the search's")
	}
}

// Optimize respects admission control and the closed state like any
// request.
func TestOptimizeAdmission(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	svc := mustService(t, Config{
		Scheduler: ts,
		Optimizer: &OptimizerConfig{},
	})
	// Pre-cancelled context dies in admission or in the search's first
	// ctx check, never panics.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Optimize(ctx, rand.New(rand.NewSource(1)), optimizeRels(t, 2, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	// Closed service rejects with ErrClosed.
	svc2, err := New(Config{Scheduler: ts, Optimizer: &OptimizerConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Close()
	if _, err := svc2.Optimize(context.Background(), rand.New(rand.NewSource(1)), optimizeRels(t, 2, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: err = %v", err)
	}
}

// Optimize counters: searches, delivered, and the scheduled/pruned
// ledger are recorded; the request-path counters (serve.requests etc.)
// are untouched — Optimize is not a Schedule call.
func TestOptimizeCounters(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler: ts,
		CacheSize: 16,
		Optimizer: &OptimizerConfig{},
		Rec:       met,
	})
	if _, err := svc.Optimize(context.Background(), rand.New(rand.NewSource(3)), optimizeRels(t, 5, 4)); err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot().Counters
	if snap["serve.optimize_searches"] != 1 || snap["serve.optimize_delivered"] != 1 {
		t.Fatalf("searches=%d delivered=%d, want 1/1",
			snap["serve.optimize_searches"], snap["serve.optimize_delivered"])
	}
	if snap["serve.optimize_scheduled"] == 0 {
		t.Fatal("no scheduled candidates recorded")
	}
	if snap["serve.requests"] != 0 {
		t.Fatalf("Optimize leaked into serve.requests = %d", snap["serve.requests"])
	}
}
