package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// Regression: a follower coalesced onto a leader that was shed by
// admission control (ErrOverloaded) must NOT inherit the shed — the
// follower held no admission resources while waiting, so the leader's
// rejection says nothing about it. It retries, takes over leadership,
// and completes. (Before the fix, a full service turned one shed leader
// into a shed for every coalesced follower.)
func TestCacheFollowerRetriesAfterLeaderOverload(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.3)
	svc := mustService(t, Config{Scheduler: ts, CacheSize: 4})
	tree := testTree(t, 501, 6)
	fp := ts.Fingerprint(tree)

	// Claim flight leadership out-of-band so the Schedule call below is
	// deterministically a follower.
	fl, leader := svc.cache.flightFor(fp)
	if !leader {
		t.Fatal("test could not claim flight leadership")
	}

	folDone := make(chan error, 1)
	var res *Result
	go func() {
		var err error
		res, err = svc.Schedule(context.Background(), tree)
		folDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // follower is parked on the flight

	// Resolve the flight as a shed leader: the follower must loop, win
	// the next flight, and schedule the plan itself.
	svc.cache.resolve(fp, fl, nil, nil, ErrOverloaded)
	select {
	case err := <-folDone:
		if err != nil {
			t.Fatalf("follower inherited the leader's shed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed after leader overload")
	}
	if res == nil || res.Schedule == nil {
		t.Fatal("follower returned no schedule")
	}
	if svc.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1 (successor filled the cache)", svc.CacheLen())
	}
}

// fpWithPrefix fabricates a fingerprint landing in shard prefix&(shards-1).
func fpWithPrefix(prefix byte, salt byte) sched.Fingerprint {
	var fp sched.Fingerprint
	fp[0] = prefix
	fp[1] = salt
	return fp
}

// The sharded cache must spread the key space by fingerprint prefix,
// keep Len() equal to the sum of per-shard lengths, and evict the
// globally oldest entry regardless of which shard holds it.
func TestCacheShardDistributionAndGlobalLRU(t *testing.T) {
	c := newSchedCache(4)
	tree := &plan.TaskTree{}
	// Eight entries with distinct prefixes: one per shard, inserted in
	// stamp order 0..7. Capacity 4 ⇒ the four oldest (prefixes 0..3)
	// are evicted as the later ones arrive.
	for i := byte(0); i < 8; i++ {
		c.put(fpWithPrefix(i, 0), nil, tree)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (bounded)", got)
	}
	lens := c.shardLens()
	sum, populated := 0, 0
	for _, n := range lens {
		sum += n
		if n > 0 {
			populated++
		}
	}
	if sum != c.Len() {
		t.Fatalf("shardLens sum to %d, Len is %d", sum, c.Len())
	}
	if populated != 4 {
		t.Fatalf("%d shards populated, want 4 (one entry each): %v", populated, lens)
	}
	if got := c.evictionCount(); got != 4 {
		t.Fatalf("evictionCount = %d, want 4", got)
	}
	for i := byte(0); i < 8; i++ {
		e := c.get(fpWithPrefix(i, 0))
		if want := i >= 4; (e != nil) != want {
			t.Fatalf("prefix %d cached=%v, want %v (global LRU order)", i, e != nil, want)
		}
	}

	// Touch the otherwise-oldest survivor, then overflow: the victim
	// must be the globally least-recently-touched entry (prefix 5), not
	// the newly touched one — cross-shard recency is respected.
	c.get(fpWithPrefix(4, 0))
	c.put(fpWithPrefix(9, 0), nil, tree)
	if c.get(fpWithPrefix(5, 0)) != nil {
		t.Fatal("globally oldest entry (prefix 5) survived eviction")
	}
	if c.get(fpWithPrefix(4, 0)) == nil {
		t.Fatal("freshly touched entry (prefix 4) was evicted")
	}

	// Same-shard collisions stay independent entries.
	c2 := newSchedCache(8)
	for i := byte(0); i < 3; i++ {
		c2.put(fpWithPrefix(7, i), nil, tree)
	}
	if got := c2.shardLens()[7&(cacheShards-1)]; got != 3 {
		t.Fatalf("shard 7 holds %d entries, want 3", got)
	}
}

// The service-level eviction counter must agree with the cache's own
// sharded accounting.
func TestCacheEvictionCounterMatchesShardAccounting(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.4)
	rec := obs.NewMetrics()
	svc := mustService(t, Config{Scheduler: ts, CacheSize: 2, Rec: rec})
	ctx := context.Background()
	for seed := int64(601); seed < 605; seed++ {
		if _, err := svc.Schedule(ctx, testTree(t, seed, 3)); err != nil {
			t.Fatal(err)
		}
	}
	counted := rec.Snapshot().Counters["serve.cache_evictions"]
	if counted != 2 {
		t.Fatalf("serve.cache_evictions = %d, want 2", counted)
	}
	if got := svc.cache.evictionCount(); got != counted {
		t.Fatalf("shard accounting says %d evictions, counter says %d", got, counted)
	}
	if svc.CacheLen() != 2 {
		t.Fatalf("CacheLen = %d, want 2", svc.CacheLen())
	}
}

// Every submission lands in exactly one outcome counter, and invalid
// submissions are kept out of serve.requests — the goodput denominator.
// At quiescence:
//
//	requests  = delivered + rejected + cancelled + closed_rejects + failed
//	submitted = requests + invalid
func TestCounterArithmetic(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 1,
		MaxQueue:    -1, // full means shed
		BatchWindow: 150 * time.Millisecond,
		Rec:         met,
	})
	ctx := context.Background()
	tree := testTree(t, 701, 4)

	// Two invalid submissions: counted as serve.invalid only.
	if _, err := svc.Schedule(ctx, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := svc.Schedule(ctx, &plan.TaskTree{}); err == nil {
		t.Fatal("empty tree accepted")
	}

	// One cancelled: pre-cancelled context, valid tree.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Schedule(cctx, tree); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	// One delivered and one rejected: the first holds the only slot in
	// its batching window while the second is shed.
	firstDone := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(ctx, tree)
		firstDone <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := svc.Schedule(ctx, tree); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first request failed: %v", err)
	}

	// One closed reject.
	svc.Close()
	if _, err := svc.Schedule(ctx, tree); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}

	snap := met.Snapshot()
	cs := snap.Counters
	if cs["serve.invalid"] != 2 {
		t.Fatalf("serve.invalid = %d, want 2", cs["serve.invalid"])
	}
	want := map[string]int64{
		"serve.delivered":      1,
		"serve.rejected":       1,
		"serve.cancelled":      1,
		"serve.closed_rejects": 1,
		"serve.failed":         0,
	}
	for name, n := range want {
		if cs[name] != n {
			t.Fatalf("%s = %d, want %d (counters: %v)", name, cs[name], n, cs)
		}
	}
	sum := cs["serve.delivered"] + cs["serve.rejected"] + cs["serve.cancelled"] +
		cs["serve.closed_rejects"] + cs["serve.failed"]
	if cs["serve.requests"] != sum {
		t.Fatalf("serve.requests = %d, outcome classes sum to %d", cs["serve.requests"], sum)
	}
	if cs["serve.requests"] != 4 {
		t.Fatalf("serve.requests = %d, want 4 (invalid excluded)", cs["serve.requests"])
	}
	// Every valid request's wall time was observed, invalid ones never.
	if h := snap.Histograms["serve.request_seconds"]; h.Count != 4 {
		t.Fatalf("serve.request_seconds count = %d, want 4", h.Count)
	}
}

// TestCachedSingletonHammerRacesClose drives the cached-singleton path
// (leader admission → spawnGroup → deliver) while Close races it, so
// the spawnGroup-returns-false → inline-runGroup fallback is exercised
// under the race detector. Part of `make cache-race` and the loadgen
// race gate: every request must end in a classified outcome — success,
// ErrClosed, ErrOverloaded, or its own ctx error — and the counter
// arithmetic must balance after the dust settles.
func TestCachedSingletonHammerRacesClose(t *testing.T) {
	const workers = 8
	ts := testScheduler(12, 0.5, 0.4)
	met := obs.NewMetrics()
	svc, err := New(Config{
		Scheduler: ts, CacheSize: 8, MaxInFlight: 2, MaxQueue: -1, Rec: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	trees := make([]*plan.TaskTree, 4)
	for i := range trees {
		trees[i] = testTree(t, int64(801+i), 3+i%2)
	}

	var (
		wg       sync.WaitGroup
		attempts atomic.Int64
		stopped  atomic.Bool // cache hits outlive Close, so ErrClosed alone can't end the loop
		bad      = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stopped.Load(); i++ {
				attempts.Add(1)
				_, err := svc.Schedule(context.Background(), trees[(w+i)%len(trees)])
				switch {
				case err == nil, errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
					continue
				default:
					bad <- err
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let leaders, hits, and coalesces mix
	svc.Close()                       // races spawnGroup on in-flight singletons
	stopped.Store(true)
	wg.Wait()
	close(bad)
	for err := range bad {
		t.Fatalf("hammer request failed with unclassified error: %v", err)
	}

	cs := met.Snapshot().Counters
	sum := cs["serve.delivered"] + cs["serve.rejected"] + cs["serve.cancelled"] +
		cs["serve.closed_rejects"] + cs["serve.failed"]
	if cs["serve.requests"] != sum {
		t.Fatalf("serve.requests = %d, outcome classes sum to %d (counters: %v)",
			cs["serve.requests"], sum, cs)
	}
	if cs["serve.requests"] != attempts.Load() {
		t.Fatalf("serve.requests = %d, hammer sent %d", cs["serve.requests"], attempts.Load())
	}
	if cs["serve.failed"] != 0 {
		t.Fatalf("serve.failed = %d, want 0", cs["serve.failed"])
	}
	if svc.InFlight() != 0 {
		t.Fatalf("%d requests still in flight after Close", svc.InFlight())
	}
}
