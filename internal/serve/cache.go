// The serve-layer schedule cache: a bounded LRU of completed schedules
// keyed by plan fingerprint, with singleflight deduplication so N
// concurrent requests for the same plan compute it once.
//
// Correctness rests on two invariants established elsewhere:
//
//   - Equal fingerprints imply byte-identical schedules
//     (sched.TreeScheduler.Fingerprint covers every input TreeSchedule
//     reads, pinned by the fingerprint identity tests).
//
//   - A completed *sched.Schedule is immutable by convention (see the
//     Schedule doc), so one cached schedule may be handed to any number
//     of concurrent readers.
//
// Cache misses are always scheduled as singleton groups, bypassing the
// batching window: a batched schedule depends on the accidental
// companions sharing its window, so only the batch-independent
// singleton form is deterministic per fingerprint and safe to replay to
// future requests.
package serve

import (
	"container/list"
	"sync"

	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// flight is one in-progress computation of a fingerprint's schedule.
// The leader closes done after filling s or err; followers wait.
type flight struct {
	done chan struct{}
	s    *sched.Schedule
	tree *plan.TaskTree
	err  error
}

// schedCache is the bounded LRU plus the singleflight table. A nil
// *schedCache (caching disabled) is inert: get misses, flightFor
// declines leadership.
type schedCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[sched.Fingerprint]*list.Element
	flights map[sched.Fingerprint]*flight
}

// cacheEntry pairs a fingerprint with its schedule and the tree it was
// computed from (returned as the Result.Group of every hit).
type cacheEntry struct {
	fp   sched.Fingerprint
	s    *sched.Schedule
	tree *plan.TaskTree
}

func newSchedCache(capacity int) *schedCache {
	if capacity <= 0 {
		return nil
	}
	return &schedCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[sched.Fingerprint]*list.Element, capacity),
		flights: make(map[sched.Fingerprint]*flight),
	}
}

// get returns the cached entry and marks it most recently used.
func (c *schedCache) get(fp sched.Fingerprint) *cacheEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts a completed schedule, evicting from the LRU tail past
// capacity. Reports the number of evictions (0 or 1).
func (c *schedCache) put(fp sched.Fingerprint, s *sched.Schedule, tree *plan.TaskTree) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		// A racing leader already filled it; keep the existing entry
		// (byte-identical by the fingerprint invariant).
		c.lru.MoveToFront(el)
		return 0
	}
	c.entries[fp] = c.lru.PushFront(&cacheEntry{fp: fp, s: s, tree: tree})
	evicted := 0
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).fp)
		evicted++
	}
	return evicted
}

// Len reports the number of cached schedules.
func (c *schedCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// flightFor joins or starts the fingerprint's flight. leader is true
// when the caller must compute the schedule and then resolve the
// flight; otherwise the caller waits on the returned flight's done.
func (c *schedCache) flightFor(fp sched.Fingerprint) (fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[fp]; ok {
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	c.flights[fp] = fl
	return fl, true
}

// resolve publishes the leader's outcome to the flight's followers and
// retires the flight, so the next request for the fingerprint starts
// fresh (after checking the LRU, which resolve's caller fills first on
// success).
func (c *schedCache) resolve(fp sched.Fingerprint, fl *flight, s *sched.Schedule, tree *plan.TaskTree, err error) {
	c.mu.Lock()
	delete(c.flights, fp)
	c.mu.Unlock()
	fl.s, fl.tree, fl.err = s, tree, err
	close(fl.done)
}
