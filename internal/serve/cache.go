// The serve-layer schedule cache: a bounded LRU of completed schedules
// keyed by plan fingerprint, with singleflight deduplication so N
// concurrent requests for the same plan compute it once.
//
// Correctness rests on two invariants established elsewhere:
//
//   - Equal fingerprints imply byte-identical schedules
//     (sched.TreeScheduler.Fingerprint covers every input TreeSchedule
//     reads, pinned by the fingerprint identity tests).
//
//   - A completed *sched.Schedule is immutable by convention (see the
//     Schedule doc), so one cached schedule may be handed to any number
//     of concurrent readers.
//
// Cache misses are always scheduled as singleton groups, bypassing the
// batching window: a batched schedule depends on the accidental
// companions sharing its window, so only the batch-independent
// singleton form is deterministic per fingerprint and safe to replay to
// future requests.
//
// Concurrency. The cache is sharded by fingerprint prefix: each of the
// cacheShards shards owns its slice of the key space (entries, LRU
// recency list, and singleflight flights) under its own mutex, so
// concurrent requests for different plans never serialize on one lock —
// the hot path (hit, or joining a flight) takes exactly one shard
// mutex. Only capacity accounting is global: a monotonically increasing
// touch stamp orders entries across shards, and eviction removes the
// entry with the globally smallest stamp (each shard's LRU tail is its
// oldest entry, so the global victim is the min-stamp tail). Eviction
// walks every shard, but it only runs when the cache is past capacity —
// the steady-state hot path never pays for it.
package serve

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// cacheShards is the number of independent cache shards. A power of two
// so the fingerprint prefix maps to a shard with one mask; 16 shards
// keep the per-shard mutex essentially uncontended at the service's
// MaxInFlight scales while costing four words of fixed overhead each.
const cacheShards = 16

// flight is one in-progress computation of a fingerprint's schedule.
// The leader closes done after filling s or err; followers wait.
type flight struct {
	done chan struct{}
	s    *sched.Schedule
	tree *plan.TaskTree
	err  error
}

// cacheEntry pairs a fingerprint with its schedule and the tree it was
// computed from. group is the ready-made singleton Result.Group shared
// by every hit — immutable, so handing one slice to all readers is
// safe and saves an allocation per hit.
type cacheEntry struct {
	fp    sched.Fingerprint
	s     *sched.Schedule
	tree  *plan.TaskTree
	group []*plan.TaskTree
	// stamp is the entry's last-touch tick of the cache's global clock,
	// written under the owning shard's mutex. Shard LRU order and stamp
	// order coincide, so each shard's tail holds its smallest stamp.
	stamp uint64
}

// cacheShard is one lock domain: the entries and in-flight computations
// of one slice of the fingerprint space.
type cacheShard struct {
	mu        sync.Mutex
	lru       *list.List // front = most recently used; values are *cacheEntry
	entries   map[sched.Fingerprint]*list.Element
	flights   map[sched.Fingerprint]*flight
	evictions int64
}

// schedCache is the sharded bounded LRU plus the singleflight table. A
// nil *schedCache (caching disabled) is inert: get misses, flightFor
// declines leadership.
type schedCache struct {
	cap    int
	size   atomic.Int64  // total entries across shards
	clock  atomic.Uint64 // global touch stamp source
	shards [cacheShards]cacheShard
}

func newSchedCache(capacity int) *schedCache {
	if capacity <= 0 {
		return nil
	}
	c := &schedCache{cap: capacity}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].entries = make(map[sched.Fingerprint]*list.Element)
		c.shards[i].flights = make(map[sched.Fingerprint]*flight)
	}
	return c
}

// shard maps a fingerprint to its lock domain by prefix. The
// fingerprint is a SHA-256 digest, so the first byte is already
// uniformly distributed — no re-hashing needed.
func (c *schedCache) shard(fp sched.Fingerprint) *cacheShard {
	return &c.shards[int(fp[0])&(cacheShards-1)]
}

// get returns the cached entry and marks it most recently used.
func (c *schedCache) get(fp sched.Fingerprint) *cacheEntry {
	if c == nil {
		return nil
	}
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[fp]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	e.stamp = c.clock.Add(1)
	sh.lru.MoveToFront(el)
	return e
}

// put inserts a completed schedule, evicting globally-least-recently
// used entries past capacity. Reports the number of evictions.
func (c *schedCache) put(fp sched.Fingerprint, s *sched.Schedule, tree *plan.TaskTree) int {
	sh := c.shard(fp)
	sh.mu.Lock()
	if el, ok := sh.entries[fp]; ok {
		// A racing leader already filled it; keep the existing entry
		// (byte-identical by the fingerprint invariant).
		el.Value.(*cacheEntry).stamp = c.clock.Add(1)
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return 0
	}
	e := &cacheEntry{
		fp: fp, s: s, tree: tree,
		group: []*plan.TaskTree{tree},
		stamp: c.clock.Add(1),
	}
	sh.entries[fp] = sh.lru.PushFront(e)
	sh.mu.Unlock()

	evicted := 0
	for n := c.size.Add(1); n > int64(c.cap); n = c.size.Load() {
		if !c.evictOne() {
			break
		}
		evicted++
	}
	return evicted
}

// evictOne removes the entry with the globally smallest touch stamp:
// each shard's LRU tail is its oldest entry, so the global victim is
// the minimum over tails. Shards are locked one at a time — eviction
// tolerates a concurrent touch promoting the candidate (the entry
// evicted is then merely approximately oldest, which is all an LRU
// promises under concurrency; with no concurrent touches the choice is
// exact). Reports false when every shard is empty.
func (c *schedCache) evictOne() bool {
	victim := -1
	var oldest uint64 = math.MaxUint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if tail := sh.lru.Back(); tail != nil {
			if st := tail.Value.(*cacheEntry).stamp; st <= oldest {
				oldest = st
				victim = i
			}
		}
		sh.mu.Unlock()
	}
	if victim < 0 {
		return false
	}
	sh := &c.shards[victim]
	sh.mu.Lock()
	tail := sh.lru.Back()
	if tail == nil {
		sh.mu.Unlock()
		return false
	}
	sh.lru.Remove(tail)
	delete(sh.entries, tail.Value.(*cacheEntry).fp)
	sh.evictions++
	sh.mu.Unlock()
	c.size.Add(-1)
	return true
}

// Len reports the number of cached schedules across all shards.
func (c *schedCache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.size.Load())
}

// shardLens reports each shard's entry count, for the distribution
// tests and debugging.
func (c *schedCache) shardLens() []int {
	if c == nil {
		return nil
	}
	lens := make([]int, cacheShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		lens[i] = sh.lru.Len()
		sh.mu.Unlock()
	}
	return lens
}

// evictionCount reports the total evictions across all shards (the
// sharded accounting the serve.cache_evictions counter is checked
// against in tests).
func (c *schedCache) evictionCount() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.evictions
		sh.mu.Unlock()
	}
	return n
}

// flightFor joins or starts the fingerprint's flight. leader is true
// when the caller must compute the schedule and then resolve the
// flight; otherwise the caller waits on the returned flight's done.
func (c *schedCache) flightFor(fp sched.Fingerprint) (fl *flight, leader bool) {
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fl, ok := sh.flights[fp]; ok {
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	sh.flights[fp] = fl
	return fl, true
}

// resolve publishes the leader's outcome to the flight's followers and
// retires the flight, so the next request for the fingerprint starts
// fresh (after checking the LRU, which resolve's caller fills first on
// success).
func (c *schedCache) resolve(fp sched.Fingerprint, fl *flight, s *sched.Schedule, tree *plan.TaskTree, err error) {
	sh := c.shard(fp)
	sh.mu.Lock()
	delete(sh.flights, fp)
	sh.mu.Unlock()
	fl.s, fl.tree, fl.err = s, tree, err
	close(fl.done)
}
