package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func testScheduler(p int, eps, f float64) sched.TreeScheduler {
	return sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       p,
		F:       f,
	}
}

func testTree(t testing.TB, seed int64, joins int) *plan.TaskTree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

func mustService(t testing.TB, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestConcurrentRequestsBoundedAndIdentical is the service's core
// contract, run with ≥32 goroutines racing through admission, batching,
// and scheduling (the suite is part of `make serve-race`):
//
//	(a) in-flight requests never exceed MaxInFlight,
//	(b) every admitted request succeeds, and
//	(c) each request's schedule is byte-identical to a direct
//	    ScheduleBatch call on the exact grouping the service formed.
func TestConcurrentRequestsBoundedAndIdentical(t *testing.T) {
	const (
		limit = 4
		reqs  = 40
	)
	ts := testScheduler(16, 0.5, 0.7)
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   ts,
		MaxInFlight: limit,
		MaxQueue:    reqs,
		BatchWindow: 3 * time.Millisecond,
		MaxBatch:    4,
		Rec:         met,
	})

	trees := make([]*plan.TaskTree, 6)
	for i := range trees {
		trees[i] = testTree(t, int64(i+1), 6)
	}

	results := make([]*Result, reqs)
	errs := make([]error, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Schedule(context.Background(), trees[i%len(trees)])
		}(i)
	}
	wg.Wait()

	direct := ts // no recorder: the comparison target is the bare scheduler
	verified := map[*sched.Schedule]bool{}
	for i := 0; i < reqs; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		res := results[i]
		if res == nil || res.Schedule == nil {
			t.Fatalf("request %d has no result", i)
		}
		if res.Index < 0 || res.Index >= len(res.Group) || res.Group[res.Index] != trees[i%len(trees)] {
			t.Fatalf("request %d: index %d does not locate its tree in a group of %d",
				i, res.Index, len(res.Group))
		}
		if len(res.Group) > 4 {
			t.Fatalf("request %d: group of %d exceeds MaxBatch 4", i, len(res.Group))
		}
		if verified[res.Schedule] {
			continue // group schedule already compared for another member
		}
		verified[res.Schedule] = true
		want, err := direct.ScheduleBatch(res.Group)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := sched.EncodeJSON(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := sched.EncodeJSON(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("request %d: served schedule differs from direct ScheduleBatch on the same group", i)
		}
	}

	snap := met.Snapshot()
	h, ok := snap.Histograms["serve.inflight"]
	if !ok || h.Count != reqs {
		t.Fatalf("serve.inflight sampled %d times, want %d", h.Count, reqs)
	}
	if h.Max > limit {
		t.Fatalf("in-flight peaked at %g, admission limit is %d", h.Max, limit)
	}
	if snap.Counters["serve.requests"] != reqs {
		t.Fatalf("serve.requests = %d, want %d", snap.Counters["serve.requests"], reqs)
	}
	if bs := snap.Histograms["serve.batch_size"]; bs.Count == 0 || bs.Max > 4 {
		t.Fatalf("batch sizes %+v violate MaxBatch", bs)
	}
	if svc.InFlight() != 0 {
		t.Fatalf("%d requests still in flight after completion", svc.InFlight())
	}
}

func TestCancelledRequestReturnsCtxErrPromptly(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 1,
		BatchWindow: 500 * time.Millisecond,
		Rec:         met,
	})
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(ctx, testTree(t, 3, 5))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request enter the batching window
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never returned")
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("cancelled request took %v — it waited out the 500ms batching window", elapsed)
	}
	// The request left before its window closed, so no batch was ever
	// scheduled for it. Close drains the collector first so the window
	// has deterministically resolved by the time we read the counter.
	svc.Close()
	if n := met.Snapshot().Counters["serve.batches"]; n != 0 {
		t.Fatalf("cancelled request was still scheduled (%d batches)", n)
	}
}

func TestPreCancelledRequestNeverAdmitted(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{Scheduler: testScheduler(8, 0.5, 0.7), Rec: met})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Schedule(ctx, testTree(t, 4, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if met.Snapshot().Histograms["serve.inflight"].Count != 0 {
		t.Fatal("pre-cancelled request consumed an admission slot")
	}
}

func TestOverloadShedsWithTypedError(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 1,
		MaxQueue:    -1, // no wait queue: full means shed
		BatchWindow: 200 * time.Millisecond,
		Rec:         met,
	})
	tree := testTree(t, 5, 5)
	resCh := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(context.Background(), tree)
		resCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // first request holds the only slot, in its window
	if _, err := svc.Schedule(context.Background(), tree); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	if met.Snapshot().Counters["serve.rejected"] != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestWaitQueueIsBounded(t *testing.T) {
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 1,
		MaxQueue:    2,
		BatchWindow: 150 * time.Millisecond,
	})
	tree := testTree(t, 6, 5)
	errCh := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := svc.Schedule(context.Background(), tree)
			errCh <- err
		}()
		time.Sleep(20 * time.Millisecond)
	}
	// Slot held by request 1 (in its window), requests 2 and 3 fill the
	// wait queue of two; request 4 must shed.
	if _, err := svc.Schedule(context.Background(), tree); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	for i := 0; i < 3; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
}

func TestDeadlinePressureDegradesToSolo(t *testing.T) {
	met := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 2,
		BatchWindow: 250 * time.Millisecond,
		SoloMargin:  2 * time.Second,
		Rec:         met,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	res, err := svc.Schedule(ctx, testTree(t, 7, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solo || len(res.Group) != 1 {
		t.Fatalf("near-deadline request was batched: solo=%v group=%d", res.Solo, len(res.Group))
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("solo request took %v — it sat in the batching window", elapsed)
	}
	if met.Snapshot().Counters["serve.solo_deadline"] != 1 {
		t.Fatal("solo fallback not counted")
	}

	// A relaxed deadline (farther than SoloMargin) must still batch.
	relaxed, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	svc2 := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		BatchWindow: 20 * time.Millisecond,
		SoloMargin:  5 * time.Millisecond,
	})
	res2, err := svc2.Schedule(relaxed, testTree(t, 7, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Solo {
		t.Fatal("relaxed-deadline request degraded to solo")
	}
}

func TestWindowGroupsConcurrentRequests(t *testing.T) {
	ts := testScheduler(12, 0.5, 0.7)
	svc := mustService(t, Config{
		Scheduler:   ts,
		MaxInFlight: 8,
		BatchWindow: 150 * time.Millisecond,
		MaxBatch:    8,
	})
	trees := []*plan.TaskTree{testTree(t, 11, 4), testTree(t, 12, 5), testTree(t, 13, 6), testTree(t, 14, 4)}
	results := make([]*Result, len(trees))
	errs := make([]error, len(trees))
	var wg sync.WaitGroup
	for i := range trees {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Schedule(context.Background(), trees[i])
		}(i)
		if i == 0 {
			time.Sleep(30 * time.Millisecond) // first request opens the window
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// All four arrived well inside the first request's 150ms window, so
	// they share one group and one schedule.
	for i := 1; i < len(results); i++ {
		if results[i].Schedule != results[0].Schedule {
			t.Fatalf("request %d scheduled in a different group", i)
		}
	}
	if len(results[0].Group) != len(trees) {
		t.Fatalf("group of %d, want %d", len(results[0].Group), len(trees))
	}
	// Group membership order and indices are consistent.
	for i, res := range results {
		if res.Group[res.Index] != trees[i] {
			t.Fatalf("request %d: index %d does not point at its tree", i, res.Index)
		}
	}
	// And the shared schedule is what a direct call produces.
	want, err := ts.ScheduleBatch(results[0].Group)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := sched.EncodeJSON(results[0].Schedule)
	wantJSON, _ := sched.EncodeJSON(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("grouped schedule differs from direct ScheduleBatch")
	}
}

func TestBatchOfOneMatchesSchedule(t *testing.T) {
	ts := testScheduler(10, 0.5, 0.7)
	svc := mustService(t, Config{Scheduler: ts, BatchWindow: -1})
	tree := testTree(t, 21, 6)
	res, err := svc.Schedule(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ts.Schedule(tree)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := sched.EncodeJSON(res.Schedule)
	wantJSON, _ := sched.EncodeJSON(single)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("a served group of one differs from TreeSchedule")
	}
}

func TestServiceRejectsInvalidInput(t *testing.T) {
	svc := mustService(t, Config{Scheduler: testScheduler(8, 0.5, 0.7)})
	if _, err := svc.Schedule(context.Background(), nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := svc.Schedule(context.Background(), &plan.TaskTree{}); err == nil {
		t.Error("empty (zero-task) tree accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero-value scheduler accepted")
	}
	bad := testScheduler(0, 0.5, 0.7)
	if _, err := New(Config{Scheduler: bad}); err == nil {
		t.Error("P = 0 scheduler accepted")
	}
}

func TestCloseFailsPendingAndRefusesNew(t *testing.T) {
	svc := mustService(t, Config{Scheduler: testScheduler(8, 0.5, 0.7)})
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := svc.Schedule(context.Background(), testTree(t, 31, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestCloseDrainsInFlightRequests(t *testing.T) {
	svc := mustService(t, Config{
		Scheduler:   testScheduler(8, 0.5, 0.7),
		MaxInFlight: 2,
		BatchWindow: 300 * time.Millisecond,
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(context.Background(), testTree(t, 41, 5))
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // request is in its batching window
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Close cuts the window short; the already-admitted request is
	// still scheduled (graceful drain), not dropped.
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("in-flight request failed at Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never returned after Close")
	}
}
