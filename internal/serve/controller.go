// Adaptive inter/intra-query parallelism controller.
//
// The controller is a periodic feedback loop over the service's own
// observability stream: each tick it reads the obs.Metrics snapshot the
// service publishes into, derives three pressure signals — the shed
// rate (serve.rejected per serve.requests over the tick), the wait-queue
// occupancy, and the mean request latency over the tick — and retunes
// three knobs through the service's atomic knob block:
//
//   - the batching window (wider under pressure: larger groups amortize
//     scheduling work over more queries, trading latency for throughput —
//     but only when the service can actually coalesce, i.e. MaxBatch > 1
//     and more than one request may be in flight; otherwise a wider
//     window is pure added wait with no companion to share it);
//   - the per-query parallelism cap TreeScheduler.MaxDegree (lower under
//     pressure: fewer clones per operator means cheaper placement and a
//     higher service rate — inter-query parallelism is bought by
//     shrinking intra-query parallelism, the core trade of the paper's
//     multi-query regime);
//   - the scheduler pool width TreeScheduler.Workers (narrower under
//     pressure: MaxInFlight concurrent scheduling calls each spawning a
//     full worker pool oversubscribes the host exactly when it is
//     busiest).
//
// The policy is hysteresis-banded AIMD. Above the high band the
// controller tightens multiplicatively (halve the cap, double the
// window, drop one worker); below the low band it relaxes additively
// (one step back toward the configured values); between the bands it
// holds, so the knobs do not oscillate around a noisy operating point.
// Tightening is multiplicative and relaxing additive for the classic
// reason: overload must be escaped in O(log) ticks, while recovery
// probes gently enough not to re-trigger the collapse it just escaped.
//
// MaxDegree changes are safe under the schedule cache because the cap
// participates in sched.TreeScheduler.Fingerprint: schedules computed
// under different caps live under different keys, so a retune can never
// cause a stale-cap cache hit. Workers is deliberately NOT part of the
// fingerprint — it changes how fast a schedule is computed, never its
// bytes.
package serve

import (
	"time"

	"mdrs/internal/obs"
	"mdrs/internal/par"
)

// ControllerConfig configures the adaptive controller. The zero value
// disables it; every other field has a default resolved by
// newController.
type ControllerConfig struct {
	// Enable turns the controller on. Off (the default), no knob is ever
	// written after New seeds them, and the service is byte-identical to
	// a controller-free build.
	Enable bool

	// Interval is the control-loop period. Default: 100ms — long enough
	// that each tick sees a meaningful request sample, short enough to
	// react to a load step within a few hundred milliseconds.
	Interval time.Duration

	// Source, when non-nil, is the metrics aggregate the controller
	// reads its signals from. Default: if Config.Rec is itself a
	// *obs.Metrics it is used directly; otherwise a private Metrics is
	// created and teed into Config.Rec via obs.Multi, so the controller
	// always observes the service's own counters.
	Source *obs.Metrics

	// HighShed and LowShed band the shed rate (serve.rejected per
	// serve.requests over one tick). Above HighShed the controller
	// tightens; below LowShed it may relax. Defaults: 0.05 and 0.01.
	HighShed float64
	LowShed  float64

	// HighQueue and LowQueue band the wait-queue occupancy
	// (queued / MaxQueue). Defaults: 0.5 and 0.125.
	HighQueue float64
	LowQueue  float64

	// HighLatency, when positive, adds a latency trigger: a tick whose
	// mean serve.request_seconds exceeds it counts as pressure even if
	// nothing was shed — the early-warning signal, since latency climbs
	// before the queue overflows. Default (0): disabled.
	HighLatency time.Duration

	// MinDegree floors the per-query parallelism cap so the controller
	// can never serialize queries entirely. Default: 1.
	MinDegree int

	// MaxWindow caps how far the controller may widen the batching
	// window. Default: 8× the configured window, or 16ms when the
	// configured window is opportunistic (zero).
	MaxWindow time.Duration
}

// withDefaults resolves the zero-value controller knobs against the
// service configuration (already itself default-resolved).
func (c ControllerConfig) withDefaults(svc Config) ControllerConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.HighShed <= 0 {
		c.HighShed = 0.05
	}
	if c.LowShed <= 0 {
		c.LowShed = 0.01
	}
	if c.HighQueue <= 0 {
		c.HighQueue = 0.5
	}
	if c.LowQueue <= 0 {
		c.LowQueue = 0.125
	}
	if c.MinDegree <= 0 {
		c.MinDegree = 1
	}
	if c.MaxWindow <= 0 {
		if svc.BatchWindow > 0 {
			c.MaxWindow = 8 * svc.BatchWindow
		} else {
			c.MaxWindow = 16 * time.Millisecond
		}
	}
	return c
}

// controller holds the resolved policy plus the per-tick state: the
// configured base values relaxation recovers toward, and the previous
// tick's counter readings the per-tick deltas are computed against.
type controller struct {
	cfg ControllerConfig
	src *obs.Metrics

	// Configured values: the relaxed operating point.
	baseWindow  time.Duration
	baseSolo    time.Duration
	baseDegree  int // configured MaxDegree; 0 = uncapped
	degreeCeil  int // effective ceiling for recovery (baseDegree, or P when uncapped)
	baseWorkers int // effective configured pool width (par.Workers-resolved)

	// coalesce records whether batching can ever amortize anything:
	// MaxBatch > 1 and more than one admitted request at a time. When
	// false the window knob is left alone — widening it would delay every
	// group leader for companions that can never arrive.
	coalesce bool

	// Previous tick's cumulative counters, for windowed deltas.
	prevRequests int64
	prevRejected int64
	prevLatCount int64
	prevLatSum   float64
}

// newController resolves the controller configuration against the
// (already default-resolved) service configuration and returns the
// possibly-rewritten Config: when no metrics aggregate is observable, a
// private one is teed into cfg.Rec so the controller sees the service's
// own counters. Callers must therefore use the returned Config.
func newController(cfg Config) (*controller, Config) {
	cc := cfg.Controller.withDefaults(cfg)
	src := cc.Source
	if src == nil {
		if m, ok := cfg.Rec.(*obs.Metrics); ok && m != nil {
			src = m
		} else {
			src = obs.NewMetrics()
			cfg.Rec = obs.Multi(cfg.Rec, src)
		}
	}
	ceil := cfg.Scheduler.MaxDegree
	if ceil <= 0 {
		// Uncapped: the effective per-operator ceiling is the system size
		// P (Degree can never exceed it), so halving starts from there.
		ceil = cfg.Scheduler.P
	}
	if ceil < cc.MinDegree {
		ceil = cc.MinDegree
	}
	return &controller{
		cfg:         cc,
		src:         src,
		baseWindow:  cfg.BatchWindow,
		baseSolo:    cfg.SoloMargin,
		baseDegree:  cfg.Scheduler.MaxDegree,
		degreeCeil:  ceil,
		baseWorkers: par.Workers(cfg.Scheduler.Workers),
		coalesce:    cfg.MaxBatch > 1 && cfg.MaxInFlight > 1,
	}, cfg
}

// control is the controller goroutine: one controlStep per interval
// until Close. Registered with the service WaitGroup by New.
func (s *Service) control(c *controller) {
	defer s.workers.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.controlStep(c)
		case <-s.done:
			return
		}
	}
}

// signals derives the tick's pressure signals from the metrics snapshot
// and the live gauges.
func (s *Service) signals(c *controller) (shedRate, queueOcc float64, meanLat time.Duration) {
	snap := c.src.Snapshot()
	requests := snap.Counters["serve.requests"]
	rejected := snap.Counters["serve.rejected"]
	dReq := requests - c.prevRequests
	dRej := rejected - c.prevRejected
	c.prevRequests, c.prevRejected = requests, rejected
	if dReq > 0 {
		shedRate = float64(dRej) / float64(dReq)
	}
	if h, ok := snap.Histograms["serve.request_seconds"]; ok {
		dCount := h.Count - c.prevLatCount
		dSum := h.Sum - c.prevLatSum
		c.prevLatCount, c.prevLatSum = h.Count, h.Sum
		if dCount > 0 {
			meanLat = time.Duration(dSum / float64(dCount) * float64(time.Second))
		}
	}
	if s.cfg.MaxQueue > 0 {
		queueOcc = float64(s.queued.Load()) / float64(s.cfg.MaxQueue)
	} else {
		// No wait queue configured: fall back to in-flight occupancy so a
		// saturated semaphore still registers as pressure.
		queueOcc = float64(s.inflight.Load()) / float64(s.cfg.MaxInFlight)
	}
	return shedRate, queueOcc, meanLat
}

// controlStep runs one AIMD tick: classify the operating point against
// the hysteresis bands, then tighten, relax, or hold.
func (s *Service) controlStep(c *controller) {
	shedRate, queueOcc, meanLat := s.signals(c)
	rec := s.cfg.Rec

	pressure := shedRate > c.cfg.HighShed || queueOcc > c.cfg.HighQueue ||
		(c.cfg.HighLatency > 0 && meanLat > c.cfg.HighLatency)
	idle := shedRate < c.cfg.LowShed && queueOcc < c.cfg.LowQueue &&
		(c.cfg.HighLatency <= 0 || meanLat <= c.cfg.HighLatency)

	switch {
	case pressure:
		s.tighten(c)
		obs.Count(rec, "serve.ctl.tighten", 1)
	case idle:
		s.relax(c)
		obs.Count(rec, "serve.ctl.relax", 1)
	default:
		// In-band: hold. The gap between the bands is the hysteresis that
		// keeps the knobs from oscillating around a noisy signal.
		obs.Count(rec, "serve.ctl.hold", 1)
	}

	// Gauge the tick so benchmark artifacts can plot the knob
	// trajectories against the load shape.
	obs.Observe(rec, "serve.ctl.shed_rate", shedRate)
	obs.Observe(rec, "serve.ctl.queue_occupancy", queueOcc)
	obs.Observe(rec, "serve.ctl.max_degree", float64(s.knobs.maxDegree.Load()))
	obs.Observe(rec, "serve.ctl.window_seconds", s.batchWindow().Seconds())
	obs.Observe(rec, "serve.ctl.workers", float64(s.knobs.schedWorkers.Load()))
}

// tighten is the multiplicative-decrease arm: halve the parallelism
// cap, double the batching window, drop one scheduler worker.
func (s *Service) tighten(c *controller) {
	// Per-query parallelism cap: 0 (uncapped) tightens from the
	// effective ceiling, so the first pressure tick already bites.
	cur := int(s.knobs.maxDegree.Load())
	if cur <= 0 || cur > c.degreeCeil {
		cur = c.degreeCeil
	}
	next := cur / 2
	if next < c.cfg.MinDegree {
		next = c.cfg.MinDegree
	}
	s.knobs.maxDegree.Store(int64(next))

	// Batching window: wider groups amortize per-batch scheduling work —
	// but only when companions can actually arrive (MaxBatch > 1 and
	// more than one admitted request at a time). With nothing to
	// coalesce, a wider window is pure wait added to every request
	// exactly when the queue is longest, so the knob is left alone.
	if c.coalesce {
		w := s.batchWindow()
		if w <= 0 {
			w = time.Millisecond
		} else {
			w *= 2
		}
		if w > c.cfg.MaxWindow {
			w = c.cfg.MaxWindow
		}
		s.knobs.batchWindow.Store(int64(w))
		s.retuneSolo(c, w)
	}

	// Scheduler pool: shed one worker per pressure tick, floor 1.
	if cw := s.effectiveWorkers(); cw > 1 {
		s.knobs.schedWorkers.Store(int64(cw - 1))
	}
}

// relax is the additive-increase arm: one step back toward the
// configured operating point on every idle tick.
func (s *Service) relax(c *controller) {
	cur := int(s.knobs.maxDegree.Load())
	if cur > 0 && cur < c.degreeCeil {
		next := cur + 1
		if next >= c.degreeCeil {
			// Fully recovered: restore the configured cap exactly (which
			// may be 0 = uncapped) rather than parking at the ceiling.
			s.knobs.maxDegree.Store(int64(c.baseDegree))
		} else {
			s.knobs.maxDegree.Store(int64(next))
		}
	}

	w := s.batchWindow()
	if w > c.baseWindow {
		w /= 2
		if w < c.baseWindow {
			w = c.baseWindow
		}
		s.knobs.batchWindow.Store(int64(w))
		s.retuneSolo(c, w)
	}

	if cw := s.effectiveWorkers(); cw < c.baseWorkers {
		s.knobs.schedWorkers.Store(int64(cw + 1))
	}
}

// retuneSolo keeps the deadline-degradation threshold proportional to
// the live window (the 4× default ratio), never below its configured
// base: a wider window must push the solo bypass threshold out with it,
// or every deadline-bearing request would start bypassing the batcher
// exactly when batching matters most.
func (s *Service) retuneSolo(c *controller, w time.Duration) {
	solo := 4 * w
	if solo < c.baseSolo {
		solo = c.baseSolo
	}
	s.knobs.soloMargin.Store(int64(solo))
}

// effectiveWorkers resolves the live Workers knob the way the scheduler
// will (0 = GOMAXPROCS).
func (s *Service) effectiveWorkers() int {
	return par.Workers(int(s.knobs.schedWorkers.Load()))
}
