package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// A cached result must be byte-identical to a direct TreeSchedule of
// the same tree — the cache may only change latency, never output.
func TestCacheHitIdenticalToDirectSchedule(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.3)
	svc := mustService(t, Config{Scheduler: ts, CacheSize: 8})
	ctx := context.Background()

	for seed := int64(0); seed < 5; seed++ {
		tree := testTree(t, seed, 4+int(seed))
		direct, err := ts.Schedule(tree)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.EncodeJSON(direct)
		if err != nil {
			t.Fatal(err)
		}
		// Miss, then hit; both must match the direct schedule.
		for round := 0; round < 2; round++ {
			res, err := svc.Schedule(ctx, tree)
			if err != nil {
				t.Fatal(err)
			}
			if round == 1 && !res.Cached {
				t.Fatalf("seed %d: second request not served from cache", seed)
			}
			if len(res.Group) != 1 {
				t.Fatalf("seed %d: cache path group size %d, want 1", seed, len(res.Group))
			}
			got, err := sched.EncodeJSON(res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("seed %d round %d: schedule differs from direct TreeSchedule", seed, round)
			}
		}
	}
}

// The cache hammer (part of `make cache-race`): many goroutines racing
// on a small set of distinct plans. Every result must be correct, and
// the counters must add up — with singleflight, each distinct plan is
// computed at least once and at most once per moment, and everything
// else is a hit or a coalescence.
func TestCacheHammerCountersAndIdentity(t *testing.T) {
	const (
		distinct = 4
		workers  = 16
		rounds   = 8
	)
	ts := testScheduler(12, 0.5, 0.4)
	rec := obs.NewMetrics()
	svc := mustService(t, Config{Scheduler: ts, CacheSize: distinct, Rec: rec})
	ctx := context.Background()

	trees := make([]*plan.TaskTree, distinct)
	want := make([]string, distinct)
	for i := range trees {
		trees[i] = testTree(t, int64(100+i), 3+i)
		direct, err := ts.Schedule(trees[i])
		if err != nil {
			t.Fatal(err)
		}
		j, err := sched.EncodeJSON(direct)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(j)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % distinct
				res, err := svc.Schedule(ctx, trees[i])
				if err != nil {
					errs <- err
					return
				}
				j, err := sched.EncodeJSON(res.Schedule)
				if err != nil {
					errs <- err
					return
				}
				if string(j) != want[i] {
					errs <- fmt.Errorf("worker %d round %d: schedule differs from direct", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := rec.Snapshot()
	hits := snap.Counters["serve.cache_hits"]
	misses := snap.Counters["serve.cache_misses"]
	coalesced := snap.Counters["serve.cache_coalesced"]
	total := int64(workers * rounds)
	if misses < distinct {
		t.Fatalf("misses = %d, want >= %d (each distinct plan computed)", misses, distinct)
	}
	if hits+coalesced+misses < total {
		t.Fatalf("hits(%d) + coalesced(%d) + misses(%d) < requests(%d)",
			hits, coalesced, misses, total)
	}
	if hits == 0 {
		t.Fatal("no cache hits across repeated identical plans")
	}
	if svc.CacheLen() != distinct {
		t.Fatalf("CacheLen = %d, want %d", svc.CacheLen(), distinct)
	}
}

// The LRU must stay bounded and count its evictions; a re-requested
// evicted plan is recomputed (a new miss), not resurrected.
func TestCacheEvictionBounded(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.4)
	rec := obs.NewMetrics()
	svc := mustService(t, Config{Scheduler: ts, CacheSize: 2, Rec: rec})
	ctx := context.Background()

	trees := []*plan.TaskTree{
		testTree(t, 201, 3), testTree(t, 202, 4), testTree(t, 203, 5),
	}
	for _, tree := range trees {
		if _, err := svc.Schedule(ctx, tree); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.CacheLen(); got != 2 {
		t.Fatalf("CacheLen = %d, want 2 (bounded)", got)
	}
	snap := rec.Snapshot()
	if snap.Counters["serve.cache_evictions"] != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Counters["serve.cache_evictions"])
	}
	// trees[0] was the LRU victim: asking again is a fresh miss.
	if _, err := svc.Schedule(ctx, trees[0]); err != nil {
		t.Fatal(err)
	}
	snap = rec.Snapshot()
	if snap.Counters["serve.cache_misses"] != 4 {
		t.Fatalf("misses after re-request = %d, want 4", snap.Counters["serve.cache_misses"])
	}
}

// A plan already being computed must not be computed again: concurrent
// identical requests coalesce onto one singleflight leader. The leader
// holds the only admission slot the whole group needs, so even a
// MaxInFlight=1, no-queue service absorbs the burst without shedding.
func TestCacheSingleflightCoalesces(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.3)
	rec := obs.NewMetrics()
	svc := mustService(t, Config{
		Scheduler: ts, CacheSize: 4, MaxInFlight: 1, MaxQueue: -1, Rec: rec,
	})
	ctx := context.Background()
	tree := testTree(t, 301, 8)

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Schedule(ctx, tree); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("burst request failed: %v (coalesced requests must not be shed)", err)
	}
	snap := rec.Snapshot()
	if misses := snap.Counters["serve.cache_misses"]; misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight)", misses)
	}
	if hits := snap.Counters["serve.cache_hits"] + snap.Counters["serve.cache_coalesced"]; hits != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", hits, n-1)
	}
}

// A follower whose own context dies while waiting for the leader
// returns promptly with its ctx error; a follower stranded by a
// cancelled leader retries and becomes the next leader. The test holds
// the flight open itself (white-box: flightFor before any request) so
// the follower states are reached deterministically.
func TestCacheFollowerCancellation(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.3)
	svc := mustService(t, Config{Scheduler: ts, CacheSize: 4})
	tree := testTree(t, 401, 6)
	fp := ts.Fingerprint(tree)

	// Become the flight leader out-of-band: every Schedule call for the
	// plan is now a follower until the flight resolves.
	fl, leader := svc.cache.flightFor(fp)
	if !leader {
		t.Fatal("test could not claim flight leadership")
	}

	folCtx, cancelFol := context.WithCancel(context.Background())
	folDone := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(folCtx, tree)
		folDone <- err
	}()
	fol2Done := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(context.Background(), tree)
		fol2Done <- err
	}()
	time.Sleep(20 * time.Millisecond)

	// Cancel the first follower: it must return its own ctx error
	// promptly even though the flight is still open.
	cancelFol()
	select {
	case err := <-folDone:
		if err != context.Canceled {
			t.Fatalf("cancelled follower returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower did not return while flight was open")
	}

	// Resolve the flight as a cancelled leader: the surviving follower
	// must retry, take over leadership, and complete the schedule.
	svc.cache.resolve(fp, fl, nil, nil, context.Canceled)
	select {
	case err := <-fol2Done:
		if err != nil {
			t.Fatalf("successor follower failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("successor follower never completed after leader cancellation")
	}
	if svc.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1 (successor filled the cache)", svc.CacheLen())
	}
}
