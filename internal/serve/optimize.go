// Service.Optimize: the serve layer's entry into the streaming
// bound-interleaved plan search, closing the loop ROADMAP item 1 names
// — the schedule cache's per-fingerprint completed responses feed back
// into the optimizer as exact warm-start priors.
//
// The exactness chain: the cache only stores schedules computed (or
// replayable) as singleton TreeSchedules for a fingerprint, and equal
// fingerprints imply byte-identical schedules. The optimizer's Warm
// hook therefore hands the search an *achieved* response for any
// candidate whose fingerprint is cached — not an estimate — so seeding
// the incumbent from it preserves the search's identical-winner
// guarantee while letting warm searches prune from candidate 0.
package serve

import (
	"context"
	"errors"
	"math/rand"

	"mdrs/internal/obs"
	"mdrs/internal/optimizer"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

// ErrNoOptimizer is returned by Optimize on a service configured
// without Config.Optimizer.
var ErrNoOptimizer = errors.New("serve: optimizer not configured")

// OptimizerConfig enables and tunes Service.Optimize. The search's
// system parameters (cost model, overlap, P, F, MaxDegree, Workers) are
// never set here: they follow the service's scheduler — including live
// controller retunes — so an optimized plan's winning schedule is
// exactly what Schedule would have produced for that plan at that
// moment.
type OptimizerConfig struct {
	// Candidates is the sample size K for join counts above the
	// enumeration threshold. Zero means the optimizer default (8).
	Candidates int
	// ExhaustiveJoins is the systematic-enumeration threshold, as in
	// optimizer.Search. Zero means the default (3).
	ExhaustiveJoins int
	// Shapes restricts the sampled plan shapes; nil means all four.
	Shapes []query.Shape
}

// Optimize runs the streaming bound-interleaved plan search over a
// relation catalog under the service's admission control: the call
// holds one in-flight slot for its whole duration, exactly like a
// scheduling request (a search is many TreeSchedules, so it is "at
// least" one request's load). The schedule cache, when enabled, serves
// two roles: completed per-fingerprint schedules warm-start the search,
// and the winner's schedule is written back so a subsequent Schedule of
// the winning plan — or a later Optimize over the same catalog — is a
// hit.
//
// r seeds candidate sampling above the enumeration threshold; it is
// consumed serially, so equal seeds give identical searches. The
// returned result is the optimizer's, unmodified.
func (s *Service) Optimize(ctx context.Context, r *rand.Rand, rels []*query.Relation) (*optimizer.Result, error) {
	rec := s.cfg.Rec
	if s.cfg.Optimizer == nil {
		return nil, ErrNoOptimizer
	}
	if err := s.admit(ctx); err != nil {
		obs.Count(rec, "serve.optimize_rejected", 1)
		return nil, err
	}
	obs.Observe(rec, "serve.inflight", float64(s.inflight.Add(1)))
	defer s.release(nil)

	// One scheduler snapshot for the whole search: the fingerprints the
	// warm hook computes and the schedules the search produces see the
	// same knob values even if the controller retunes mid-search.
	ts := s.scheduler()
	oc := s.cfg.Optimizer
	search := optimizer.Search{
		Model:           ts.Model,
		Overlap:         ts.Overlap,
		P:               ts.P,
		F:               ts.F,
		Candidates:      oc.Candidates,
		Shapes:          oc.Shapes,
		ExhaustiveJoins: oc.ExhaustiveJoins,
		MaxDegree:       ts.MaxDegree,
		Cache:           s.optCache,
		Workers:         ts.Workers,
		Streaming:       true,
	}
	if s.cache != nil {
		search.Warm = func(tt *plan.TaskTree) (*sched.Schedule, bool) {
			e := s.cache.get(ts.Fingerprint(tt))
			if e == nil {
				return nil, false
			}
			obs.Count(rec, "serve.optimize_warm_hits", 1)
			return e.s, true
		}
	}

	obs.Count(rec, "serve.optimize_searches", 1)
	res, err := search.BestCtx(ctx, r, rels)
	if err != nil {
		obs.Count(rec, "serve.optimize_failed", 1)
		return nil, err
	}
	obs.Count(rec, "serve.optimize_scheduled", int64(res.Scheduled))
	obs.Count(rec, "serve.optimize_pruned", int64(res.Pruned))

	// Write the winner back: its schedule was computed (or warm-served)
	// under exactly ts, so it is the fingerprint's canonical schedule.
	if s.cache != nil && res.Best.Schedule != nil {
		if tt, terr := plan.NewTaskTree(plan.MustExpand(res.Best.Plan)); terr == nil {
			if ev := s.cache.put(ts.Fingerprint(tt), res.Best.Schedule, tt); ev > 0 {
				obs.Count(rec, "serve.cache_evictions", int64(ev))
			}
		}
	}
	obs.Count(rec, "serve.optimize_delivered", 1)
	return res, nil
}
